// The OSGi framework: bundle lifecycle management, module resolution and
// event dispatch, plus the shared service registry.
//
// This is the "large non-real-time container" half of the paper's split
// architecture (Figure 3). The DRCR (src/drcom/drcr.hpp) runs inside it as a
// bundle like any other.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "osgi/bundle.hpp"
#include "osgi/events.hpp"
#include "osgi/service_registry.hpp"
#include "util/result.hpp"

namespace drt::osgi {

using BundleListener = std::function<void(const BundleEvent&)>;
using FrameworkListener = std::function<void(const FrameworkEvent&)>;

/// Per-bundle facade handed to activators — the equivalent of
/// org.osgi.framework.BundleContext. All service operations performed through
/// a context are attributed to (and cleaned up with) its bundle.
class BundleContext {
 public:
  BundleContext(Framework& framework, Bundle& bundle)
      : framework_(&framework), bundle_(&bundle) {}

  [[nodiscard]] BundleId bundle_id() const;
  [[nodiscard]] const Bundle& bundle() const { return *bundle_; }
  [[nodiscard]] Framework& framework() { return *framework_; }

  /// Service facade (attributed to this bundle).
  ServiceRegistration register_service(std::vector<std::string> interfaces,
                                       std::shared_ptr<void> service,
                                       Properties properties = {});
  template <typename T>
  ServiceRegistration register_service(std::string interface_name,
                                       std::shared_ptr<T> service,
                                       Properties properties = {}) {
    return register_service(std::vector<std::string>{std::move(interface_name)},
                            std::static_pointer_cast<void>(std::move(service)),
                            std::move(properties));
  }

  [[nodiscard]] std::vector<ServiceReference> get_service_references(
      std::string_view interface_name, const Filter* filter = nullptr) const;
  [[nodiscard]] std::optional<ServiceReference> get_service_reference(
      std::string_view interface_name, const Filter* filter = nullptr) const;
  template <typename T>
  [[nodiscard]] std::shared_ptr<T> get_service(
      const ServiceReference& reference) const;

  ListenerToken add_service_listener(ServiceListener listener,
                                     std::optional<Filter> filter = {});
  void remove_service_listener(ListenerToken token);

  ListenerToken add_bundle_listener(BundleListener listener);
  void remove_bundle_listener(ListenerToken token);

 private:
  Framework* framework_;
  Bundle* bundle_;
};

class Framework {
 public:
  Framework();
  ~Framework();
  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  /// Installs a bundle (state INSTALLED). Fails on duplicate symbolic name +
  /// version (OSGi forbids that combination).
  Result<BundleId> install(BundleDefinition definition);

  /// Attempts to resolve one bundle's imports (transitively resolving its
  /// providers). INSTALLED -> RESOLVED on success.
  Result<void> resolve(BundleId id);

  /// Resolves then starts: INSTALLED/RESOLVED -> STARTING -> ACTIVE. An
  /// activator exception rolls back to RESOLVED and returns the error.
  Result<void> start(BundleId id);

  /// ACTIVE -> STOPPING -> RESOLVED. The bundle's services are unregistered
  /// automatically after its activator ran stop().
  Result<void> stop(BundleId id);

  /// Stops (if needed) and removes the bundle. Bundles wired to its exports
  /// keep working until refresh() — the OSGi rule that makes hot-swap safe.
  Result<void> uninstall(BundleId id);

  /// In-place replacement: stop, swap definition, re-resolve, restart if the
  /// bundle was ACTIVE before. This is OSGi's continuous-deployment verb.
  Result<void> update(BundleId id, BundleDefinition definition);

  /// Recomputes wiring for every non-active bundle whose providers changed.
  void refresh();

  // ---------------------------------------------------- start levels ----
  /// The framework's active start level (StartLevel spec). Raising it starts
  /// every autostart bundle whose level became reachable (ascending level,
  /// install order within a level); lowering stops bundles above the new
  /// level (descending). Start failures are reported as framework ERROR
  /// events, not returned — level changes are best-effort per bundle.
  void set_start_level(int level);
  [[nodiscard]] int start_level() const { return start_level_; }

  /// Moves one bundle to a different start level, starting/stopping it as
  /// the new level dictates.
  Result<void> set_bundle_start_level(BundleId id, int level);

  [[nodiscard]] Bundle* get_bundle(BundleId id);
  [[nodiscard]] const Bundle* get_bundle(BundleId id) const;
  [[nodiscard]] Bundle* find_bundle(std::string_view symbolic_name);
  [[nodiscard]] std::vector<const Bundle*> bundles() const;

  [[nodiscard]] ServiceRegistry& registry() { return registry_; }
  [[nodiscard]] const ServiceRegistry& registry() const { return registry_; }

  /// System-level context (bundle id 0) for code that is not itself a bundle
  /// (test harnesses, the examples' main()).
  [[nodiscard]] BundleContext& system_context() { return *system_context_; }

  ListenerToken add_bundle_listener(BundleListener listener);
  void remove_bundle_listener(ListenerToken token);
  ListenerToken add_framework_listener(FrameworkListener listener);
  void remove_framework_listener(ListenerToken token);

 private:
  friend class BundleContext;

  Result<void> resolve_locked(Bundle& bundle);
  Result<void> start_locked(Bundle& bundle);
  Result<void> stop_locked(Bundle& bundle);
  void fire_bundle_event(BundleEventType type, const Bundle& bundle);
  void fire_framework_event(FrameworkEventType type, BundleId bundle_id,
                            std::string message);

  struct BundleListenerRecord {
    ListenerToken token;
    BundleListener listener;
  };
  struct FrameworkListenerRecord {
    ListenerToken token;
    FrameworkListener listener;
  };

  std::vector<std::unique_ptr<Bundle>> bundles_;
  ServiceRegistry registry_;
  std::vector<BundleListenerRecord> bundle_listeners_;
  std::vector<FrameworkListenerRecord> framework_listeners_;
  BundleId next_bundle_id_ = 1;
  ListenerToken next_token_ = 1;
  int start_level_ = 1;
  std::unique_ptr<Bundle> system_bundle_;
  std::unique_ptr<BundleContext> system_context_;
};

template <typename T>
std::shared_ptr<T> BundleContext::get_service(
    const ServiceReference& reference) const {
  return framework_->registry().get_service<T>(reference);
}

}  // namespace drt::osgi
