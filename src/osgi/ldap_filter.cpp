#include "osgi/ldap_filter.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace drt::osgi {

namespace {

enum class Op { kAnd, kOr, kNot, kEqual, kApprox, kGreaterEq, kLessEq, kPresent, kSubstring };

}  // namespace

/// AST node. Composite ops use `children`; leaf ops use attr/value.
class FilterNode {
 public:
  Op op;
  std::vector<std::shared_ptr<const FilterNode>> children;  // and/or/not
  std::string attr;
  std::string value;                   // raw pattern for substring
  std::vector<std::string> segments;   // substring split on '*'
  bool leading_star = false;
  bool trailing_star = false;
};

namespace {

class FilterParseError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Case + whitespace folding for the '~=' approximate match.
std::string fold_approx(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool substring_match(const FilterNode& node, std::string_view candidate) {
  const auto& segs = node.segments;
  if (segs.empty()) return true;  // pattern was all wildcards
  std::size_t begin = 0;
  std::size_t end = candidate.size();
  std::size_t first = 0;
  std::size_t last = segs.size();
  if (!node.leading_star) {
    // Anchored prefix.
    const std::string& seg = segs.front();
    if (candidate.size() < seg.size() ||
        candidate.substr(0, seg.size()) != seg) {
      return false;
    }
    begin = seg.size();
    ++first;
  }
  if (!node.trailing_star && first < last) {
    // Anchored suffix, carved off before the floating middle segments so a
    // greedy earlier match can never steal the final occurrence.
    const std::string& seg = segs.back();
    if (end - begin < seg.size() ||
        candidate.substr(end - seg.size()) != seg) {
      return false;
    }
    end -= seg.size();
    --last;
  }
  for (std::size_t i = first; i < last; ++i) {
    const std::string& seg = segs[i];
    const auto found = candidate.substr(0, end).find(seg, begin);
    if (found == std::string_view::npos) return false;
    begin = found + seg.size();
  }
  return true;
}

/// Compares one scalar property value against the filter's string literal.
bool compare_scalar(Op op, const PropertyValue& stored,
                    const std::string& literal) {
  if (const auto* num = std::get_if<std::int64_t>(&stored)) {
    const auto rhs_int = str::parse_int(literal);
    if (rhs_int) {
      switch (op) {
        case Op::kEqual: case Op::kApprox: return *num == *rhs_int;
        case Op::kGreaterEq: return *num >= *rhs_int;
        case Op::kLessEq: return *num <= *rhs_int;
        default: return false;
      }
    }
    const auto rhs_dbl = str::parse_double(literal);
    if (!rhs_dbl) return false;
    const auto lhs = static_cast<double>(*num);
    switch (op) {
      case Op::kEqual: case Op::kApprox: return lhs == *rhs_dbl;
      case Op::kGreaterEq: return lhs >= *rhs_dbl;
      case Op::kLessEq: return lhs <= *rhs_dbl;
      default: return false;
    }
  }
  if (const auto* num = std::get_if<double>(&stored)) {
    const auto rhs = str::parse_double(literal);
    if (!rhs) return false;
    switch (op) {
      case Op::kEqual: case Op::kApprox: return *num == *rhs;
      case Op::kGreaterEq: return *num >= *rhs;
      case Op::kLessEq: return *num <= *rhs;
      default: return false;
    }
  }
  if (const auto* flag = std::get_if<bool>(&stored)) {
    const auto rhs = str::parse_bool(literal);
    if (!rhs) return false;
    return (op == Op::kEqual || op == Op::kApprox) && *flag == *rhs;
  }
  if (const auto* text = std::get_if<std::string>(&stored)) {
    switch (op) {
      case Op::kEqual: return *text == literal;
      case Op::kApprox: return fold_approx(*text) == fold_approx(literal);
      case Op::kGreaterEq: return *text >= literal;
      case Op::kLessEq: return *text <= literal;
      default: return false;
    }
  }
  return false;
}

bool evaluate(const FilterNode& node, const Properties& properties) {
  switch (node.op) {
    case Op::kAnd:
      return std::all_of(node.children.begin(), node.children.end(),
                         [&](const auto& c) { return evaluate(*c, properties); });
    case Op::kOr:
      return std::any_of(node.children.begin(), node.children.end(),
                         [&](const auto& c) { return evaluate(*c, properties); });
    case Op::kNot:
      return !evaluate(*node.children.front(), properties);
    case Op::kPresent:
      return properties.contains(node.attr);
    case Op::kSubstring: {
      const auto* stored = properties.get(node.attr);
      if (stored == nullptr) return false;
      if (const auto* text = std::get_if<std::string>(stored)) {
        return substring_match(node, *text);
      }
      if (const auto* arr = std::get_if<std::vector<std::string>>(stored)) {
        return std::any_of(arr->begin(), arr->end(), [&](const auto& elem) {
          return substring_match(node, elem);
        });
      }
      return false;
    }
    default: {
      const auto* stored = properties.get(node.attr);
      if (stored == nullptr) return false;
      if (const auto* arr = std::get_if<std::vector<std::string>>(stored)) {
        return std::any_of(arr->begin(), arr->end(), [&](const auto& elem) {
          return compare_scalar(node.op, PropertyValue{elem}, node.value);
        });
      }
      return compare_scalar(node.op, *stored, node.value);
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  std::shared_ptr<const FilterNode> parse() {
    skip_ws();
    auto node = parse_filter();
    skip_ws();
    if (pos_ != input_.size()) {
      throw FilterParseError("trailing characters after filter");
    }
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= input_.size()) throw FilterParseError("unexpected end of filter");
    return input_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      throw FilterParseError(std::string("expected '") + c + "'");
    }
  }

  std::shared_ptr<const FilterNode> parse_filter() {
    expect('(');
    skip_ws();
    auto node = std::make_shared<FilterNode>();
    const char c = peek();
    if (c == '&' || c == '|') {
      next();
      node->op = (c == '&') ? Op::kAnd : Op::kOr;
      skip_ws();
      while (peek() == '(') {
        node->children.push_back(parse_filter());
        skip_ws();
      }
      if (node->children.empty()) {
        throw FilterParseError("composite filter needs at least one operand");
      }
      expect(')');
      return node;
    }
    if (c == '!') {
      next();
      node->op = Op::kNot;
      skip_ws();
      node->children.push_back(parse_filter());
      skip_ws();
      expect(')');
      return node;
    }
    // Leaf operation: attr OP value ')'.
    node->attr = parse_attr();
    skip_ws();
    const char op_char = next();
    if (op_char == '~') {
      expect('=');
      node->op = Op::kApprox;
    } else if (op_char == '>') {
      expect('=');
      node->op = Op::kGreaterEq;
    } else if (op_char == '<') {
      expect('=');
      node->op = Op::kLessEq;
    } else if (op_char == '=') {
      node->op = Op::kEqual;
    } else {
      throw FilterParseError("expected comparison operator");
    }
    bool has_star = false;
    node->value = parse_value(has_star);
    expect(')');
    if (node->op == Op::kEqual && has_star) {
      if (node->value == "*") {
        node->op = Op::kPresent;
      } else {
        node->op = Op::kSubstring;
        compile_substring(*node);
      }
    } else if (has_star && node->op != Op::kEqual) {
      throw FilterParseError("'*' only allowed in equality values");
    }
    return node;
  }

  std::string parse_attr() {
    std::string attr;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '=' || c == '~' || c == '>' || c == '<' || c == '(' ||
          c == ')') {
        break;
      }
      attr += c;
      ++pos_;
    }
    const auto trimmed = str::trim(attr);
    if (trimmed.empty()) throw FilterParseError("empty attribute name");
    return std::string(trimmed);
  }

  /// Parses a value up to ')'. '\' escapes the next character. Positions of
  /// unescaped '*' wildcards are recorded in star_positions_ so that escaped
  /// stars ("\*") survive as literal characters inside segments.
  std::string parse_value(bool& has_unescaped_star) {
    std::string value;
    star_positions_.clear();
    while (true) {
      const char c = peek();
      if (c == ')') break;
      if (c == '(') throw FilterParseError("'(' in value must be escaped");
      next();
      if (c == '\\') {
        value += next();  // escaped char taken literally
        continue;
      }
      if (c == '*') {
        has_unescaped_star = true;
        star_positions_.push_back(value.size());
      }
      value += c;
    }
    return value;
  }

  void compile_substring(FilterNode& node) {
    // Split node.value on the star positions recorded during parse_value.
    node.segments.clear();
    std::size_t start = 0;
    for (std::size_t star : star_positions_) {
      if (star > start) {
        node.segments.push_back(node.value.substr(start, star - start));
      }
      // star == start: consecutive wildcards collapse into one.
      start = star + 1;
    }
    if (start < node.value.size()) {
      node.segments.push_back(node.value.substr(start));
    }
    node.leading_star = !star_positions_.empty() && star_positions_.front() == 0;
    node.trailing_star =
        !star_positions_.empty() && star_positions_.back() == node.value.size() - 1;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> star_positions_;
};

}  // namespace

Result<Filter> Filter::parse(std::string_view text) {
  try {
    Parser parser(text);
    auto root = parser.parse();
    return Filter(std::move(root), std::string(str::trim(text)));
  } catch (const FilterParseError& e) {
    return make_error("osgi.bad_filter",
                      std::string(e.what()) + " in filter '" +
                          std::string(text) + "'");
  }
}

bool Filter::matches(const Properties& properties) const {
  return evaluate(*root_, properties);
}

}  // namespace drt::osgi
