#include "osgi/service_registry.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace drt::osgi {

namespace {
const Properties kEmptyProperties;
const std::vector<std::string> kNoInterfaces;

/// The OSGi ordering rule: highest ranking first, ties broken by lowest
/// service id. Ids are unique, so this is a strict weak order with no equal
/// elements — lower_bound yields the unique insertion point.
bool ranks_before(const std::shared_ptr<detail::ServiceEntry>& a,
                  const std::shared_ptr<detail::ServiceEntry>& b) {
  if (a->ranking != b->ranking) return a->ranking > b->ranking;
  return a->id < b->id;
}

void insert_sorted(std::vector<std::shared_ptr<detail::ServiceEntry>>& pool,
                   const std::shared_ptr<detail::ServiceEntry>& entry) {
  pool.insert(std::lower_bound(pool.begin(), pool.end(), entry, ranks_before),
              entry);
}

void erase_entry(std::vector<std::shared_ptr<detail::ServiceEntry>>& pool,
                 const std::shared_ptr<detail::ServiceEntry>& entry) {
  pool.erase(std::remove(pool.begin(), pool.end(), entry), pool.end());
}
}  // namespace

const Properties& ServiceReference::properties() const {
  return entry_ ? entry_->properties : kEmptyProperties;
}

const std::vector<std::string>& ServiceReference::interfaces() const {
  return entry_ ? entry_->interfaces : kNoInterfaces;
}

std::int64_t ServiceReference::ranking() const {
  return entry_ ? entry_->ranking : 0;
}

void ServiceRegistration::set_properties(Properties properties) {
  if (registry_ != nullptr && entry_ != nullptr && entry_->registered) {
    registry_->do_set_properties(entry_, std::move(properties));
  }
}

void ServiceRegistration::unregister() {
  if (registry_ != nullptr && entry_ != nullptr && entry_->registered) {
    registry_->do_unregister(entry_);
  }
}

ServiceRegistration ServiceRegistry::register_service(
    BundleId owner, std::vector<std::string> interfaces,
    std::shared_ptr<void> service, Properties properties) {
  auto entry = std::make_shared<detail::ServiceEntry>();
  entry->id = next_service_id_++;
  entry->owner = owner;
  entry->interfaces = std::move(interfaces);
  entry->service = std::move(service);
  entry->properties = std::move(properties);
  entry->properties.set("objectClass", entry->interfaces);
  entry->properties.set("service.id",
                        static_cast<std::int64_t>(entry->id));
  entry->properties.set("service.bundleid",
                        static_cast<std::int64_t>(owner));
  entry->ranking = entry->properties.get_int("service.ranking").value_or(0);
  entries_.push_back(entry);
  index_entry(entry);
  log::Line(log::Level::kDebug, "osgi.registry")
      << "registered service #" << entry->id << " "
      << entry->properties.to_string();
  fire(ServiceEventType::kRegistered, entry);
  return ServiceRegistration{entry, this};
}

const std::vector<ServiceRegistry::EntryPtr>* ServiceRegistry::pool_for(
    std::string_view interface_name) const {
  if (interface_name.empty()) return &sorted_all_;
  const auto found = by_interface_.find(interface_name);
  return found == by_interface_.end() ? nullptr : &found->second;
}

std::vector<ServiceReference> ServiceRegistry::get_references(
    std::string_view interface_name, const Filter* filter) const {
  // The index pools are already sorted best-first; filtering preserves the
  // order, so no per-call sort remains.
  if (lookup_counter_ != nullptr) lookup_counter_->add();
  const std::vector<EntryPtr>* pool = pool_for(interface_name);
  if (pool == nullptr) return {};
  std::vector<ServiceReference> out;
  out.reserve(pool->size());
  for (const auto& entry : *pool) {
    if (!entry->registered) continue;
    if (filter != nullptr && !filter->matches(entry->properties)) continue;
    out.push_back(ServiceReference{entry});
  }
  return out;
}

std::optional<ServiceReference> ServiceRegistry::get_reference(
    std::string_view interface_name, const Filter* filter) const {
  // First match in a best-first pool IS the best reference: no vector, no
  // sort, early exit.
  if (lookup_counter_ != nullptr) lookup_counter_->add();
  const std::vector<EntryPtr>* pool = pool_for(interface_name);
  if (pool == nullptr) return std::nullopt;
  for (const auto& entry : *pool) {
    if (!entry->registered) continue;
    if (filter != nullptr && !filter->matches(entry->properties)) continue;
    return ServiceReference{entry};
  }
  return std::nullopt;
}

void ServiceRegistry::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == metrics_) return;
  if (metrics_ != nullptr) metrics_->remove_gauge_callback("osgi.services");
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    lookup_counter_ = nullptr;
    return;
  }
  lookup_counter_ = metrics_->counter(
      "osgi.service_lookups", "Service registry reference lookups.");
  metrics_->gauge_callback("osgi.services", "Live registered services.",
                           [this] { return static_cast<double>(size()); });
}

ListenerToken ServiceRegistry::add_listener(ServiceListener listener,
                                            std::optional<Filter> filter) {
  const ListenerToken token = next_listener_token_++;
  listeners_.push_back({token, std::move(listener), std::move(filter)});
  return token;
}

void ServiceRegistry::remove_listener(ListenerToken token) {
  std::erase_if(listeners_,
                [token](const auto& rec) { return rec.token == token; });
}

void ServiceRegistry::unregister_all(BundleId owner) {
  // Snapshot first: unregistering fires listeners that may mutate entries_.
  std::vector<std::shared_ptr<detail::ServiceEntry>> owned;
  for (const auto& entry : entries_) {
    if (entry->registered && entry->owner == owner) owned.push_back(entry);
  }
  for (const auto& entry : owned) do_unregister(entry);
}

std::size_t ServiceRegistry::size() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const auto& e) { return e->registered; }));
}

void ServiceRegistry::index_entry(const EntryPtr& entry) {
  insert_sorted(sorted_all_, entry);
  for (const std::string& interface_name : entry->interfaces) {
    insert_sorted(by_interface_[interface_name], entry);
  }
}

void ServiceRegistry::unindex_entry(const EntryPtr& entry) {
  erase_entry(sorted_all_, entry);
  for (const std::string& interface_name : entry->interfaces) {
    const auto found = by_interface_.find(interface_name);
    if (found == by_interface_.end()) continue;
    erase_entry(found->second, entry);
    if (found->second.empty()) by_interface_.erase(found);
  }
}

void ServiceRegistry::do_unregister(
    const std::shared_ptr<detail::ServiceEntry>& entry) {
  fire(ServiceEventType::kUnregistering, entry);
  entry->registered = false;
  unindex_entry(entry);
  std::erase(entries_, entry);
  log::Line(log::Level::kDebug, "osgi.registry")
      << "unregistered service #" << entry->id;
}

void ServiceRegistry::do_set_properties(
    const std::shared_ptr<detail::ServiceEntry>& entry,
    Properties properties) {
  // Standard properties survive modification (OSGi Core §5.2.5).
  properties.set("objectClass", entry->interfaces);
  properties.set("service.id", static_cast<std::int64_t>(entry->id));
  properties.set("service.bundleid",
                 static_cast<std::int64_t>(entry->owner));
  entry->properties = std::move(properties);
  const std::int64_t new_ranking =
      entry->properties.get_int("service.ranking").value_or(0);
  if (new_ranking != entry->ranking) {
    // Ranking moved: re-slot the entry in every sorted pool it belongs to.
    unindex_entry(entry);
    entry->ranking = new_ranking;
    index_entry(entry);
  }
  fire(ServiceEventType::kModified, entry);
}

void ServiceRegistry::fire(ServiceEventType type,
                           const std::shared_ptr<detail::ServiceEntry>& entry) {
  // Copy the listener list: a listener may add/remove listeners while being
  // notified (the DRCR does exactly that when a resolver appears).
  const auto snapshot = listeners_;
  const ServiceEvent event{type, ServiceReference{entry}};
  for (const auto& record : snapshot) {
    if (record.filter.has_value() &&
        !record.filter->matches(entry->properties)) {
      continue;
    }
    record.listener(event);
  }
}

}  // namespace drt::osgi
