#include "osgi/service_registry.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace drt::osgi {

namespace {
const Properties kEmptyProperties;
const std::vector<std::string> kNoInterfaces;
}  // namespace

const Properties& ServiceReference::properties() const {
  return entry_ ? entry_->properties : kEmptyProperties;
}

const std::vector<std::string>& ServiceReference::interfaces() const {
  return entry_ ? entry_->interfaces : kNoInterfaces;
}

std::int64_t ServiceReference::ranking() const {
  if (!entry_) return 0;
  return entry_->properties.get_int("service.ranking").value_or(0);
}

void ServiceRegistration::set_properties(Properties properties) {
  if (registry_ != nullptr && entry_ != nullptr && entry_->registered) {
    registry_->do_set_properties(entry_, std::move(properties));
  }
}

void ServiceRegistration::unregister() {
  if (registry_ != nullptr && entry_ != nullptr && entry_->registered) {
    registry_->do_unregister(entry_);
  }
}

ServiceRegistration ServiceRegistry::register_service(
    BundleId owner, std::vector<std::string> interfaces,
    std::shared_ptr<void> service, Properties properties) {
  auto entry = std::make_shared<detail::ServiceEntry>();
  entry->id = next_service_id_++;
  entry->owner = owner;
  entry->interfaces = std::move(interfaces);
  entry->service = std::move(service);
  entry->properties = std::move(properties);
  entry->properties.set("objectClass", entry->interfaces);
  entry->properties.set("service.id",
                        static_cast<std::int64_t>(entry->id));
  entry->properties.set("service.bundleid",
                        static_cast<std::int64_t>(owner));
  entries_.push_back(entry);
  log::Line(log::Level::kDebug, "osgi.registry")
      << "registered service #" << entry->id << " "
      << entry->properties.to_string();
  fire(ServiceEventType::kRegistered, entry);
  return ServiceRegistration{entry, this};
}

std::vector<ServiceReference> ServiceRegistry::get_references(
    std::string_view interface_name, const Filter* filter) const {
  std::vector<std::shared_ptr<detail::ServiceEntry>> matched;
  for (const auto& entry : entries_) {
    if (!entry->registered) continue;
    if (!interface_name.empty()) {
      const bool provides =
          std::find(entry->interfaces.begin(), entry->interfaces.end(),
                    interface_name) != entry->interfaces.end();
      if (!provides) continue;
    }
    if (filter != nullptr && !filter->matches(entry->properties)) continue;
    matched.push_back(entry);
  }
  std::sort(matched.begin(), matched.end(),
            [](const auto& a, const auto& b) {
              const auto rank_a = a->properties.get_int("service.ranking").value_or(0);
              const auto rank_b = b->properties.get_int("service.ranking").value_or(0);
              if (rank_a != rank_b) return rank_a > rank_b;
              return a->id < b->id;
            });
  std::vector<ServiceReference> out;
  out.reserve(matched.size());
  for (auto& entry : matched) out.push_back(ServiceReference{std::move(entry)});
  return out;
}

std::optional<ServiceReference> ServiceRegistry::get_reference(
    std::string_view interface_name, const Filter* filter) const {
  auto refs = get_references(interface_name, filter);
  if (refs.empty()) return std::nullopt;
  return refs.front();
}

ListenerToken ServiceRegistry::add_listener(ServiceListener listener,
                                            std::optional<Filter> filter) {
  const ListenerToken token = next_listener_token_++;
  listeners_.push_back({token, std::move(listener), std::move(filter)});
  return token;
}

void ServiceRegistry::remove_listener(ListenerToken token) {
  std::erase_if(listeners_,
                [token](const auto& rec) { return rec.token == token; });
}

void ServiceRegistry::unregister_all(BundleId owner) {
  // Snapshot first: unregistering fires listeners that may mutate entries_.
  std::vector<std::shared_ptr<detail::ServiceEntry>> owned;
  for (const auto& entry : entries_) {
    if (entry->registered && entry->owner == owner) owned.push_back(entry);
  }
  for (const auto& entry : owned) do_unregister(entry);
}

std::size_t ServiceRegistry::size() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const auto& e) { return e->registered; }));
}

void ServiceRegistry::do_unregister(
    const std::shared_ptr<detail::ServiceEntry>& entry) {
  fire(ServiceEventType::kUnregistering, entry);
  entry->registered = false;
  std::erase(entries_, entry);
  log::Line(log::Level::kDebug, "osgi.registry")
      << "unregistered service #" << entry->id;
}

void ServiceRegistry::do_set_properties(
    const std::shared_ptr<detail::ServiceEntry>& entry,
    Properties properties) {
  // Standard properties survive modification (OSGi Core §5.2.5).
  properties.set("objectClass", entry->interfaces);
  properties.set("service.id", static_cast<std::int64_t>(entry->id));
  properties.set("service.bundleid",
                 static_cast<std::int64_t>(entry->owner));
  entry->properties = std::move(properties);
  fire(ServiceEventType::kModified, entry);
}

void ServiceRegistry::fire(ServiceEventType type,
                           const std::shared_ptr<detail::ServiceEntry>& entry) {
  // Copy the listener list: a listener may add/remove listeners while being
  // notified (the DRCR does exactly that when a resolver appears).
  const auto snapshot = listeners_;
  const ServiceEvent event{type, ServiceReference{entry}};
  for (const auto& record : snapshot) {
    if (record.filter.has_value() &&
        !record.filter->matches(entry->properties)) {
      continue;
    }
    record.listener(event);
  }
}

}  // namespace drt::osgi
