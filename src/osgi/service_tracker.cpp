#include "osgi/service_tracker.hpp"

#include <algorithm>

namespace drt::osgi {
namespace {

bool best_first(const ServiceReference& a, const ServiceReference& b) {
  if (a.ranking() != b.ranking()) return a.ranking() > b.ranking();
  return a.service_id() < b.service_id();
}

}  // namespace

ServiceTracker::ServiceTracker(BundleContext& context,
                               std::string interface_name,
                               std::optional<Filter> filter,
                               Callbacks callbacks)
    : context_(&context), interface_name_(std::move(interface_name)),
      filter_(std::move(filter)), callbacks_(std::move(callbacks)) {}

ServiceTracker::~ServiceTracker() { close(); }

void ServiceTracker::open() {
  if (open_) return;
  open_ = true;
  token_ = context_->add_service_listener(
      [this](const ServiceEvent& event) { handle_event(event); });
  // Deliver pre-existing services. The entry cache is updated before each
  // callback so consumers reading entries() from on_added see themselves.
  for (const auto& reference : context_->get_service_references(
           interface_name_, filter_ ? &*filter_ : nullptr)) {
    tracked_.push_back(reference);
    add_entry(reference);
    if (callbacks_.on_added) callbacks_.on_added(reference);
  }
}

void ServiceTracker::close() {
  if (!open_) return;
  open_ = false;
  if (token_.has_value()) {
    context_->remove_service_listener(*token_);
    token_.reset();
  }
  // Removal callbacks let consumers release references deterministically.
  auto snapshot = tracked_;
  tracked_.clear();
  entries_.clear();
  if (callbacks_.on_removed) {
    for (const auto& reference : snapshot) callbacks_.on_removed(reference);
  }
}

std::vector<ServiceReference> ServiceTracker::tracked() const {
  auto sorted = tracked_;
  std::sort(sorted.begin(), sorted.end(), best_first);
  return sorted;
}

std::optional<ServiceReference> ServiceTracker::best() const {
  const auto sorted = tracked();
  if (sorted.empty()) return std::nullopt;
  return sorted.front();
}

bool ServiceTracker::matches(const ServiceReference& reference) const {
  if (!interface_name_.empty()) {
    const auto& interfaces = reference.interfaces();
    if (std::find(interfaces.begin(), interfaces.end(), interface_name_) ==
        interfaces.end()) {
      return false;
    }
  }
  if (filter_.has_value() && !filter_->matches(reference.properties())) {
    return false;
  }
  return true;
}

void ServiceTracker::add_entry(const ServiceReference& reference) {
  entries_.push_back({reference, context_->get_service<void>(reference)});
  sort_entries();
}

void ServiceTracker::remove_entry(const ServiceReference& reference) {
  std::erase_if(entries_, [&](const Entry& entry) {
    return entry.reference == reference;
  });
}

void ServiceTracker::sort_entries() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return best_first(a.reference, b.reference);
            });
}

void ServiceTracker::handle_event(const ServiceEvent& event) {
  const bool currently_tracked =
      std::find(tracked_.begin(), tracked_.end(), event.reference) !=
      tracked_.end();
  switch (event.type) {
    case ServiceEventType::kRegistered:
      if (!currently_tracked && matches(event.reference)) {
        tracked_.push_back(event.reference);
        add_entry(event.reference);
        if (callbacks_.on_added) callbacks_.on_added(event.reference);
      }
      break;
    case ServiceEventType::kModified:
      if (matches(event.reference)) {
        if (!currently_tracked) {
          tracked_.push_back(event.reference);
          add_entry(event.reference);
          if (callbacks_.on_added) callbacks_.on_added(event.reference);
        } else {
          sort_entries();  // a property change may have altered the ranking
          if (callbacks_.on_modified) callbacks_.on_modified(event.reference);
        }
      } else if (currently_tracked) {
        std::erase(tracked_, event.reference);
        remove_entry(event.reference);
        if (callbacks_.on_removed) callbacks_.on_removed(event.reference);
      }
      break;
    case ServiceEventType::kUnregistering:
      if (currently_tracked) {
        std::erase(tracked_, event.reference);
        remove_entry(event.reference);
        if (callbacks_.on_removed) callbacks_.on_removed(event.reference);
      }
      break;
  }
}

}  // namespace drt::osgi
