#include "osgi/manifest.hpp"

#include "util/strings.hpp"

namespace drt::osgi {
namespace {

/// Splits a package header value on top-level commas — commas inside quoted
/// attribute values ("[1.0,2.0)") must not split clauses.
std::vector<std::string> split_clauses(std::string_view value) {
  std::vector<std::string> out;
  std::string current;
  bool in_quotes = false;
  for (char c : value) {
    if (c == '"') {
      in_quotes = !in_quotes;
      current += c;
    } else if (c == ',' && !in_quotes) {
      const auto trimmed = str::trim(current);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      current.clear();
    } else {
      current += c;
    }
  }
  const auto trimmed = str::trim(current);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

/// Parses one clause "pkg;attr=value;dir:=value" into the package name and an
/// attribute map (quotes stripped).
struct Clause {
  std::string target;
  std::map<std::string, std::string> attributes;   // attr=value
  std::map<std::string, std::string> directives;   // dir:=value
};

Result<Clause> parse_clause(std::string_view text) {
  Clause clause;
  const auto parts = str::split(text, ';');
  if (parts.empty() || parts.front().empty()) {
    return make_error("osgi.bad_manifest", "empty package clause");
  }
  clause.target = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string_view part{parts[i]};
    const auto eq = part.find('=');
    if (eq == std::string_view::npos) {
      return make_error("osgi.bad_manifest",
                        "malformed parameter '" + std::string(part) + "'");
    }
    bool directive = eq > 0 && part[eq - 1] == ':';
    auto key = std::string(
        str::trim(part.substr(0, directive ? eq - 1 : eq)));
    auto value = std::string(str::trim(part.substr(eq + 1)));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    if (directive) {
      clause.directives[key] = value;
    } else {
      clause.attributes[key] = value;
    }
  }
  return clause;
}

}  // namespace

Result<Manifest> Manifest::parse(std::string_view text) {
  Manifest manifest;
  // Unfold continuation lines (JAR rule: a line starting with one space
  // continues the previous header value).
  std::vector<std::pair<std::string, std::string>> headers;
  for (const auto& raw_line : str::split(text, '\n')) {
    // str::split already trims, so re-detect continuations from the raw text
    // is impossible; instead treat lines without ':' as continuations.
    if (raw_line.empty()) continue;
    const auto colon = raw_line.find(':');
    if (colon == std::string::npos) {
      if (headers.empty()) {
        return make_error("osgi.bad_manifest",
                          "continuation line before any header: '" + raw_line +
                              "'");
      }
      headers.back().second += raw_line;
      continue;
    }
    auto key = std::string(str::trim(std::string_view(raw_line).substr(0, colon)));
    auto value =
        std::string(str::trim(std::string_view(raw_line).substr(colon + 1)));
    headers.emplace_back(std::move(key), std::move(value));
  }

  for (const auto& [key, value] : headers) {
    manifest.raw_headers_[str::to_lower(key)] = value;
    if (str::iequals(key, "Bundle-SymbolicName")) {
      // The symbolic name may carry directives (singleton:=true); keep name.
      manifest.symbolic_name_ = str::split(value, ';').front();
    } else if (str::iequals(key, "Bundle-Version")) {
      auto version = Version::parse(value);
      if (!version.ok()) return version.error();
      manifest.version_ = std::move(version).take();
    } else if (str::iequals(key, "Bundle-Name")) {
      manifest.name_ = value;
    } else if (str::iequals(key, "Import-Package")) {
      for (const auto& clause_text : split_clauses(value)) {
        auto clause = parse_clause(clause_text);
        if (!clause.ok()) return clause.error();
        ImportClause import;
        import.package = clause.value().target;
        if (const auto found = clause.value().attributes.find("version");
            found != clause.value().attributes.end()) {
          auto range = VersionRange::parse(found->second);
          if (!range.ok()) return range.error();
          import.version_range = std::move(range).take();
        }
        if (const auto found = clause.value().directives.find("resolution");
            found != clause.value().directives.end()) {
          import.optional = str::iequals(found->second, "optional");
        }
        manifest.imports_.push_back(std::move(import));
      }
    } else if (str::iequals(key, "Export-Package")) {
      for (const auto& clause_text : split_clauses(value)) {
        auto clause = parse_clause(clause_text);
        if (!clause.ok()) return clause.error();
        ExportClause exp;
        exp.package = clause.value().target;
        if (const auto found = clause.value().attributes.find("version");
            found != clause.value().attributes.end()) {
          auto version = Version::parse(found->second);
          if (!version.ok()) return version.error();
          exp.version = std::move(version).take();
        }
        manifest.exports_.push_back(std::move(exp));
      }
    } else if (str::iequals(key, "DRT-Components")) {
      for (auto& path : str::split_non_empty(value, ',')) {
        manifest.component_resources_.push_back(std::move(path));
      }
    }
  }

  if (manifest.symbolic_name_.empty()) {
    return make_error("osgi.bad_manifest", "missing Bundle-SymbolicName");
  }
  return manifest;
}

std::string Manifest::header(std::string_view key) const {
  const auto found = raw_headers_.find(str::to_lower(key));
  return found == raw_headers_.end() ? std::string{} : found->second;
}

Manifest& Manifest::set_symbolic_name(std::string value) {
  symbolic_name_ = std::move(value);
  return *this;
}
Manifest& Manifest::set_version(Version value) {
  version_ = std::move(value);
  return *this;
}
Manifest& Manifest::set_name(std::string value) {
  name_ = std::move(value);
  return *this;
}
Manifest& Manifest::add_import(ImportClause clause) {
  imports_.push_back(std::move(clause));
  return *this;
}
Manifest& Manifest::add_export(ExportClause clause) {
  exports_.push_back(std::move(clause));
  return *this;
}
Manifest& Manifest::add_component_resource(std::string path) {
  component_resources_.push_back(std::move(path));
  return *this;
}

}  // namespace drt::osgi
