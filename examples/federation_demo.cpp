// Federation walkthrough: a 16-node DRCR cluster under one virtual-time
// engine, driven through the three federation stories:
//
//   1. global placement — components flow through the coordinator's O(1)
//      best-fit decision and spread across the cluster;
//   2. overload failover — when the preferred node rejects a contract, the
//      coordinator retries best-fit siblings until one admits it (and leaves
//      the component registered-but-unsatisfied only when the whole cluster
//      is full);
//   3. live migration — a component with queued mailbox traffic moves to a
//      lightly loaded node: descriptor snapshot, drain, re-admit, replay
//      through the inter-node channel layer, nothing lost.
//
//   $ ./federation_demo [output-dir]
//
// Writes federation_demo.trace.json (chrome://tracing / ui.perfetto.dev) for
// the node that received the migrated component. Fully deterministic: fixed
// seeds, virtual time. Exit status is non-zero if any claim above fails.
#include <cstdio>
#include <memory>
#include <string>

#include "fed/coordinator.hpp"
#include "fed/federation.hpp"
#include "obs/export.hpp"

using namespace drt;

namespace {

class WorkerComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(40));
      co_await job.next_cycle();
    }
  }
};

drcom::ComponentDescriptor worker(const std::string& name, double usage,
                                  CpuId cpu) {
  drcom::ComponentDescriptor d;
  d.name = name;
  d.bincode = "demo.W";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = drcom::PeriodicSpec{200.0, cpu, 5};
  return d;
}

/// Sporadic consumer owning its trigger mailbox "<name>t" — the component we
/// migrate with traffic still queued.
drcom::ComponentDescriptor consumer(const std::string& name) {
  drcom::ComponentDescriptor d;
  d.name = name;
  d.bincode = "demo.W";
  d.type = rtos::TaskType::kSporadic;
  d.cpu_usage = 0.1;
  drcom::PortSpec trigger;
  trigger.direction = drcom::PortDirection::kIn;
  trigger.name = name + "t";
  trigger.interface = drcom::PortInterface::kMailbox;
  trigger.data_type = rtos::DataType::kByte;
  trigger.size = 16;
  drcom::SporadicSpec spec;
  spec.min_interarrival = milliseconds(1);
  spec.run_on_cpu = 1;
  spec.priority = 4;
  spec.trigger_port = trigger.name;
  d.sporadic = spec;
  d.ports.push_back(trigger);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  bool ok = true;
  const auto check = [&ok](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };

  fed::FederationConfig config;
  config.nodes = 16;
  config.engine = rtos::EngineKind::kSequential;
  config.kernel.cpus = 2;
  config.kernel.seed = 2026;
  config.inbox_capacity = 32;
  fed::Federation federation(config);
  for (fed::NodeIndex i = 0; i < federation.size(); ++i) {
    federation.node(i).drcr->factories().register_factory(
        "demo.W", [] { return std::make_unique<WorkerComponent>(); });
  }
  federation.node(9).kernel->trace().enable();  // the migration target
  fed::FederationCoordinator coordinator(federation);

  // --- 1. Global placement: 32 workers spread across the cluster. ---------
  for (int i = 0; i < 32; ++i) {
    auto placed =
        coordinator.place(worker("w" + std::to_string(i), 0.2, 0));
    check(placed.ok(), "worker placement");
  }
  std::printf("placed 32 workers across %zu nodes "
              "(%llu decisions, %llu retries)\n",
              federation.size(),
              static_cast<unsigned long long>(coordinator.stats().placements),
              static_cast<unsigned long long>(coordinator.stats().retries));
  check(coordinator.stats().placements == 32, "all workers settled");
  check(coordinator.stats().retries == 0, "no retry while headroom exists");

  // --- 2. Overload: 0.45-utilization contracts exhaust CPU 0 cluster-wide. -
  // Each node carries 2 x 0.2 on CPU 0 (headroom 0.5), so exactly 16 hot
  // contracts fit — one per node. The 17th walks every sibling and stays
  // registered-but-unsatisfied: visible, recoverable failover.
  for (int i = 0; i < 16; ++i) {
    auto placed = coordinator.place(worker("h" + std::to_string(i), 0.45, 0));
    check(placed.ok(), "hot contract placement");
  }
  auto overflow = coordinator.place(worker("hover", 0.45, 0));
  check(overflow.ok(), "overflow placement returns its resting node");
  check(coordinator.stats().rejects == 1, "cluster-wide overload rejected");
  check(coordinator.stats().retries == static_cast<std::uint64_t>(
            federation.size() - 1),
        "overflow retried every sibling");
  std::printf("overload: 16 hot contracts admitted, 17th rejected after "
              "%llu sibling retries\n",
              static_cast<unsigned long long>(coordinator.stats().retries));
  federation.advance(milliseconds(20));

  // --- 3. Live migration with queued traffic. -----------------------------
  auto placed = coordinator.place(consumer("mig"));
  check(placed.ok(), "consumer placement");
  const fed::NodeIndex source = placed.value();
  const fed::NodeIndex target = 9;
  check(source != target, "demo expects the consumer away from node 9");

  rtos::RtKernel& src_kernel = *federation.node(source).kernel;
  rtos::Mailbox* trigger = src_kernel.mailbox_find("migt");
  check(trigger != nullptr, "consumer trigger mailbox exists");
  for (int i = 0; i < 5 && trigger != nullptr; ++i) {
    check(src_kernel.mailbox_send(
              *trigger, rtos::message_from_string("job" + std::to_string(i))),
          "queueing trigger traffic");
  }

  auto migrated = coordinator.migrate("mig", target);
  check(migrated.ok(), "live migration succeeds");
  check(coordinator.node_of("mig") == target, "placement map moved");
  check(federation.node(source).drcr->descriptor_of("mig") == nullptr,
        "source detached");
  rtos::NodeChannel* replay = federation.find_channel(source, target, "migt");
  check(replay != nullptr && replay->stats().sent == 5,
        "drained queue replayed through the channel layer");

  federation.advance(milliseconds(50));
  const rtos::ChannelStats totals = federation.channel_totals();
  check(totals.sent == totals.arrived, "all channel traffic delivered");
  check(totals.arrived == totals.accepted + totals.dropped(),
        "channel accounting conserves");
  check(federation.in_flight_total() == 0, "no stranded in-flight messages");
  std::printf("migrated 'mig' n%zu -> n%zu with 5 queued messages replayed "
              "(%llu accepted at the target)\n",
              source, target,
              static_cast<unsigned long long>(
                  replay != nullptr ? replay->stats().accepted : 0));

  // --- Chrome trace of the migration target. ------------------------------
  const obs::ChromeTraceExporter exporter;
  const std::string trace_path = out_dir + "/federation_demo.trace.json";
  auto written = exporter.write_file(
      federation.node(target).drcr->observe(), trace_path);
  check(written.ok(), "chrome trace export");
  std::printf("wrote %s (load into chrome://tracing or ui.perfetto.dev)\n",
              trace_path.c_str());

  if (!ok) return 1;
  std::printf("federation demo OK: placement, failover and live migration "
              "reproduced\n");
  return 0;
}
