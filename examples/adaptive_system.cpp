// Adaptive real-time system: custom resolving services and an adaptation
// manager — the "framework for adaptive real-time applications" of the title.
//
// Scenario: a machine-vision station runs a mandatory safety monitor plus as
// many optional inspection workers as the CPU budget allows. Two pluggable
// policies shape the system at run time:
//
//   * a custom ResolvingService ("mode guard", plugged in through the OSGi
//     service registry, §1) that rejects optional components while the
//     station is in DEGRADED mode;
//   * an adaptation manager that watches component status through the
//     management services (§2.4) and flips the mode when the safety monitor
//     reports deadline misses, causing the DRCR to shed optional load.
//
// Nothing in the component implementations knows about any of this — the
// adaptation is entirely outside the real-time code, which is the paper's
// central design argument.
//
// The inspectors submit their results to the safety monitor over a declared
// "report" capability (docs/CHANNELS.md): safety <expose>s the protocol, each
// inspector declares <use protocol="report" from="safety"/>, and the DRCR
// binds the routes at activation. When the mode guard sheds an inspector the
// DRCR revokes its route; re-admission rebinds it — the report counter makes
// the revoke/rebind cycle visible at each phase boundary.
#include <array>
#include <cstdio>
#include <cstring>

#include "cap/channel.hpp"
#include "drcom/drcr.hpp"

using namespace drt;

namespace {

class WorkerComponent : public drcom::RtComponent {
 public:
  explicit WorkerComponent(SimDuration job_cost) : job_cost_(job_cost) {}
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(job_cost_);
      // Submit this cycle's inspection result over the bound route. Shed
      // components never get here (they are deactivated), so a silent call
      // drop is not needed: while active the route is either bound or — in
      // the activation/revocation window — fails fast with
      // kCapabilityRevoked, which an inspector simply shrugs off.
      if (cap::Connection* report = job.capability("report")) {
        const auto stamp = static_cast<std::uint64_t>(job.now());
        std::array<std::byte, 8> payload{};
        std::memcpy(payload.data(), &stamp, sizeof(stamp));
        (void)report->call(1, payload);
      }
      co_await job.next_cycle();
    }
  }

 private:
  SimDuration job_cost_;
};

/// The inspectors' result protocol: one 8-byte one-way submit per job.
cap::ProtocolSpec report_protocol() {
  cap::ProtocolSpec spec;
  spec.name = "report";
  cap::MethodSpec submit;
  submit.name = "submit";
  submit.ordinal = 1;
  submit.request_bytes = 8;
  spec.methods.push_back(std::move(submit));
  return spec;
}

drcom::ComponentDescriptor worker_descriptor(const std::string& name,
                                             double hz, double usage,
                                             int priority,
                                             bool optional) {
  drcom::ComponentDescriptor d;
  d.name = name;
  d.bincode = "vision." + name;
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = drcom::PeriodicSpec{hz, 0, priority};
  d.properties.set("optional", optional);
  if (optional) {
    // Inspectors report their results to the safety monitor; the DRCR
    // resolves this route once, at activation.
    d.uses.push_back(drcom::UseSpec{"report", "safety"});
  } else {
    d.protocols.push_back(report_protocol());
    d.exposes.push_back(drcom::ExposeSpec{"report", 128});
  }
  return d;
}

/// Custom constraint resolver: while the station is degraded, optional
/// components may not be admitted, and already-active ones are revoked.
class ModeGuard : public drcom::ResolvingService {
 public:
  const std::string& name() const override { return name_; }

  Result<void> admit(const drcom::ComponentDescriptor& candidate,
                     const drcom::SystemView&) override {
    if (degraded_ && candidate.properties.get_bool("optional").value_or(false)) {
      return make_error("vision.degraded",
                        "optional components are barred in DEGRADED mode");
    }
    return Result<void>::success();
  }

  std::vector<std::string> revoke(const drcom::SystemView& view) override {
    std::vector<std::string> shed;
    if (!degraded_) return shed;
    for (const auto* descriptor : view.active) {
      if (descriptor->properties.get_bool("optional").value_or(false)) {
        shed.push_back(descriptor->name);
      }
    }
    return shed;
  }

  void set_degraded(bool degraded) { degraded_ = degraded; }
  [[nodiscard]] bool degraded() const { return degraded_; }

 private:
  std::string name_ = "mode-guard";
  bool degraded_ = false;
};

}  // namespace

int main() {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::KernelConfig{});
  osgi::Framework framework;
  drcom::DrcrConfig config;
  config.cpu_budget = 1.0;  // the custom policy is in charge, not the budget
  drcom::Drcr drcr(framework, kernel, config);

  // Implementations: the safety monitor's job cost will overrun its period
  // once we inject a "fault" (slow sensor), producing deadline misses.
  SimDuration monitor_cost = microseconds(100);
  std::uint64_t reports_received = 0;
  drcr.factories().register_factory("vision.safety", [&monitor_cost,
                                                      &reports_received] {
    // The worker reads the *current* cost each job via a reference.
    class FaultableWorker : public drcom::RtComponent {
     public:
      FaultableWorker(SimDuration& cost, std::uint64_t& reports)
          : cost_(&cost), reports_(&reports) {}
      rtos::TaskCoro run(drcom::JobContext& job) override {
        while (job.active()) {
          co_await job.consume(*cost_);
          // Drain the inspectors' typed reports submitted since last job.
          if (cap::ServerEnd* inbox = job.cap_server("report")) {
            while (inbox->try_next()) ++*reports_;
          }
          co_await job.next_cycle();
        }
      }

     private:
      SimDuration* cost_;
      std::uint64_t* reports_;
    };
    return std::make_unique<FaultableWorker>(monitor_cost, reports_received);
  });
  for (const char* name : {"insp0", "insp1", "insp2"}) {
    drcr.factories().register_factory(
        std::string("vision.") + name,
        [] { return std::make_unique<WorkerComponent>(microseconds(800)); });
  }

  // Plug the custom resolving service into the DRCR via the registry (§1).
  auto guard = std::make_shared<ModeGuard>();
  framework.system_context().register_service(
      std::string(drcom::kResolvingServiceInterface),
      std::static_pointer_cast<void>(guard));

  // Deploy: one mandatory 1 kHz safety monitor, three optional inspectors.
  (void)drcr.register_component(
      worker_descriptor("safety", 1000.0, 0.15, 1, false));
  for (const char* name : {"insp0", "insp1", "insp2"}) {
    (void)drcr.register_component(
        worker_descriptor(name, 200.0, 0.2, 5, true));
  }
  std::printf("deployed: %zu active (safety + 3 optional inspectors)\n",
              drcr.active_count());

  // The adaptation manager: a non-RT observer polling the safety monitor's
  // status and driving the mode.
  auto filter = osgi::Filter::parse("(component.name=safety)").value();
  auto safety_management =
      framework.registry().get_service<drcom::RtComponentManagement>(
          *framework.registry().get_reference(drcom::kManagementInterface,
                                              &filter));
  std::uint64_t misses_seen = 0;
  std::function<void()> adaptation_tick = [&] {
    const auto status = safety_management->get_status();
    if (!guard->degraded() && status.stats.deadline_misses > misses_seen) {
      std::printf(
          "t=%.1fs adaptation: safety missed %llu deadlines -> DEGRADED, "
          "shedding optional load\n",
          engine.now() / 1e9,
          static_cast<unsigned long long>(status.stats.deadline_misses));
      guard->set_degraded(true);
      drcr.resolve();  // apply the new policy: revoke + bar optionals
    } else if (guard->degraded() &&
               status.stats.deadline_misses == misses_seen) {
      std::printf("t=%.1fs adaptation: safety healthy again -> NORMAL\n",
                  engine.now() / 1e9);
      guard->set_degraded(false);
      drcr.resolve();  // optionals re-admitted
    }
    misses_seen = status.stats.deadline_misses;
    engine.schedule_after(milliseconds(250), adaptation_tick);
  };
  engine.schedule_after(milliseconds(250), adaptation_tick);

  // Phase 1: healthy.
  engine.run_until(seconds(2));
  const std::uint64_t reports_phase1 = reports_received;
  std::printf("t=2.0s phase 1 done: %zu active, degraded=%s, reports=%llu\n",
              drcr.active_count(), guard->degraded() ? "yes" : "no",
              static_cast<unsigned long long>(reports_phase1));

  // Phase 2: fault injection — the safety monitor's job suddenly takes 1.4x
  // its period (slow sensor), so it starts missing deadlines.
  std::printf("t=2.0s injecting fault: safety job cost 100us -> 1400us\n");
  monitor_cost = microseconds(1'400);
  engine.run_until(seconds(4));
  const std::uint64_t reports_phase2 = reports_received - reports_phase1;
  std::printf("t=4.0s phase 2 done: %zu active, degraded=%s, reports=%llu\n",
              drcr.active_count(), guard->degraded() ? "yes" : "no",
              static_cast<unsigned long long>(reports_phase2));
  const bool shed_worked = drcr.active_count() == 1 && guard->degraded();

  // Phase 3: fault clears; the adaptation manager restores NORMAL mode and
  // the DRCR re-admits the optional inspectors.
  std::printf("t=4.0s fault clears: safety job cost back to 100us\n");
  monitor_cost = microseconds(100);
  engine.run_until(seconds(6));
  const std::uint64_t reports_phase3 =
      reports_received - reports_phase1 - reports_phase2;
  std::printf("t=6.0s phase 3 done: %zu active, degraded=%s, reports=%llu\n",
              drcr.active_count(), guard->degraded() ? "yes" : "no",
              static_cast<unsigned long long>(reports_phase3));
  const bool recovered = drcr.active_count() == 4 && !guard->degraded();
  // Typed reports must flow while inspectors run and resume after rebind.
  const bool reports_flowed = reports_phase1 > 0 && reports_phase3 > 0;

  std::printf("\nADAPTIVE SCENARIO: %s\n",
              shed_worked && recovered && reports_flowed ? "OK" : "FAILED");
  return shed_worked && recovered && reports_flowed ? 0 : 1;
}
