// A simulated control system (the domain the paper targets: §3 opens with
// "In control systems, each component can be mathematically modeled using a
// transfer function").
//
// Closed loop, every block a DRCom with a declared contract:
//
//   setpnt (10 Hz) --setp--> pid (500 Hz) --actout--> plant (500 Hz)
//                              ^                          |
//                              '---------- meas ---------'
//
// The plant is a first-order system x' = (-x + u)/tau integrated at 500 Hz;
// the PID drives it to the setpoint. The example demonstrates:
//   * multi-rate real-time composition wired purely from XML contracts,
//   * bundle-based continuous deployment (§2.1): the PID arrives as a
//     bundle, is hot-swapped (update) with retuned gains mid-run, and the
//     loop keeps operating,
//   * departure cascade: uninstalling the PID bundle strands plant input;
//     the DRCR reports exactly which contracts broke.
#include <algorithm>
#include <cstdio>

#include "drcom/drcr.hpp"

using namespace drt;

namespace {

// Fixed-point scaling for the SHM integers (values are volts * 1000).
constexpr double kScale = 1000.0;

class SetpointComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      // Square wave: 1 V for 2 s, then 3 V.
      const double volts = (job.now() / seconds(2)) % 2 == 0 ? 1.0 : 3.0;
      job.write_i32("setp", 0, static_cast<std::int32_t>(volts * kScale));
      co_await job.next_cycle();
    }
  }
};

class PidComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    double integral = 0.0;
    double previous_error = 0.0;
    const double dt = 1.0 / 500.0;
    while (job.active()) {
      co_await job.consume(microseconds(40));
      const double kp = job.property_int("kp100").value_or(100) / 100.0;
      const double ki = job.property_int("ki100").value_or(50) / 100.0;
      const double kd = job.property_int("kd100").value_or(0) / 100.0;
      const double setpoint =
          job.read_i32("setp", 0).value_or(0) / kScale;
      const double measured =
          job.read_i32("meas", 0).value_or(0) / kScale;
      const double error = setpoint - measured;
      integral += error * dt;
      const double derivative = (error - previous_error) / dt;
      previous_error = error;
      double output = kp * error + ki * integral + kd * derivative;
      // Actuator saturation: +-10 V, like any real output stage.
      output = std::clamp(output, -10.0, 10.0);
      job.write_i32("actout", 0, static_cast<std::int32_t>(output * kScale));
      co_await job.next_cycle();
    }
  }
};

class PlantComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    double state = 0.0;
    const double tau = 0.05;  // 50 ms time constant
    const double dt = 1.0 / 500.0;
    while (job.active()) {
      co_await job.consume(microseconds(30));
      const double input = job.read_i32("actout", 0).value_or(0) / kScale;
      state += dt * (-state + input) / tau;
      job.write_i32("meas", 0, static_cast<std::int32_t>(state * kScale));
      co_await job.next_cycle();
    }
  }
};

constexpr const char* kSetpointXml = R"(<?xml version="1.0"?>
<drt:component name="setpnt" desc="reference generator" type="periodic"
    cpuusage="0.01">
  <implementation bincode="ctrl.Setpoint"/>
  <periodictask frequence="10" runoncpu="1" priority="6"/>
  <outport name="setp" interface="RTAI.SHM" type="Integer" size="1"/>
</drt:component>)";

constexpr const char* kPlantXml = R"(<?xml version="1.0"?>
<drt:component name="plant" desc="first-order plant model" type="periodic"
    cpuusage="0.05">
  <implementation bincode="ctrl.Plant"/>
  <periodictask frequence="500" runoncpu="0" priority="3"/>
  <inport name="actout" interface="RTAI.SHM" type="Integer" size="1"/>
  <outport name="meas" interface="RTAI.SHM" type="Integer" size="1"/>
</drt:component>)";

std::string pid_xml(int kp100, int ki100, int kd100) {
  char buffer[1024];
  std::snprintf(buffer, sizeof(buffer), R"(<?xml version="1.0"?>
<drt:component name="pid" desc="PID controller" type="periodic"
    cpuusage="0.1">
  <implementation bincode="ctrl.Pid"/>
  <periodictask frequence="500" runoncpu="0" priority="2"/>
  <inport name="setp" interface="RTAI.SHM" type="Integer" size="1"/>
  <inport name="meas" interface="RTAI.SHM" type="Integer" size="1"/>
  <outport name="actout" interface="RTAI.SHM" type="Integer" size="1"/>
  <property name="kp100" type="Integer" value="%d"/>
  <property name="ki100" type="Integer" value="%d"/>
  <property name="kd100" type="Integer" value="%d"/>
</drt:component>)",
                kp100, ki100, kd100);
  return buffer;
}

osgi::BundleDefinition pid_bundle(int kp100, int ki100, int kd100,
                                  const char* version) {
  osgi::BundleDefinition definition;
  definition.manifest.set_symbolic_name("ctrl.pid")
      .set_version(osgi::Version::parse(version).value());
  definition.manifest.add_component_resource("DRT-INF/pid.xml");
  definition.resources["DRT-INF/pid.xml"] = pid_xml(kp100, ki100, kd100);
  return definition;
}

double measured_volts(rtos::RtKernel& kernel) {
  const rtos::Shm* shm = kernel.shm_find("meas");
  return shm == nullptr ? 0.0 : shm->read_i32(0).value_or(0) / kScale;
}

}  // namespace

int main() {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::KernelConfig{});
  osgi::Framework framework;
  drcom::Drcr drcr(framework, kernel);

  drcr.factories().register_factory(
      "ctrl.Setpoint", [] { return std::make_unique<SetpointComponent>(); });
  drcr.factories().register_factory(
      "ctrl.Pid", [] { return std::make_unique<PidComponent>(); });
  drcr.factories().register_factory(
      "ctrl.Plant", [] { return std::make_unique<PlantComponent>(); });

  // Plant and reference deploy directly; the PID arrives as a bundle so we
  // can hot-swap it later.
  (void)drcr.register_component(
      std::move(drcom::parse_descriptor(kSetpointXml)).take());
  (void)drcr.register_component(
      std::move(drcom::parse_descriptor(kPlantXml)).take());
  std::printf("plant without controller: plant=%s (%s)\n",
              drcom::to_string(*drcr.state_of("plant")),
              drcr.component_health("plant")->reason.c_str());

  auto bundle = framework.install(pid_bundle(100, 50, 0, "1.0.0"));
  (void)framework.start(bundle.value());
  std::printf("PID bundle v1 started: pid=%s plant=%s\n\n",
              drcom::to_string(*drcr.state_of("pid")),
              drcom::to_string(*drcr.state_of("plant")));

  // Let the loop track the square wave; sample the response.
  std::printf("%-8s %-10s\n", "t(s)", "meas(V)");
  for (int step = 1; step <= 8; ++step) {
    engine.run_until(step * milliseconds(500));
    std::printf("%-8.1f %-10.3f\n", step * 0.5, measured_volts(kernel));
  }

  // Hot-swap: update the bundle with retuned gains. The DRCR tears the old
  // component down and activates the new contract; the plant never stops.
  std::printf("\nhot-swapping PID bundle to v2 (stiffer gains)...\n");
  (void)framework.update(bundle.value(), pid_bundle(300, 150, 0, "2.0.0"));
  std::printf("pid=%s (bundle %s)\n\n",
              drcom::to_string(*drcr.state_of("pid")),
              framework.get_bundle(bundle.value())
                  ->manifest()
                  .version()
                  .to_string()
                  .c_str());
  for (int step = 9; step <= 12; ++step) {
    engine.run_until(step * milliseconds(500));
    std::printf("%-8.1f %-10.3f\n", step * 0.5, measured_volts(kernel));
  }

  // Departure: uninstalling the controller strands the plant's actout port.
  std::printf("\nuninstalling the PID bundle...\n");
  (void)framework.uninstall(bundle.value());
  std::printf("pid registered=%s plant=%s (%s)\n",
              drcr.state_of("pid").has_value() ? "yes" : "no",
              drcom::to_string(*drcr.state_of("plant")),
              drcr.component_health("plant")->reason.c_str());

  const bool ok = *drcr.state_of("plant") == drcom::ComponentState::kUnsatisfied;
  return ok ? 0 : 1;
}
