// Observability export walkthrough: run a small deterministic deployment,
// then write the same snapshot in all three formats.
//
//   $ ./obs_export [output-dir]
//
// Produces (in output-dir, default "."):
//   obs_export.prom        — Prometheus text exposition (scrape endpoint body)
//   obs_export.json        — machine-readable snapshot (bench JSON style)
//   obs_export.trace.json  — load into chrome://tracing or ui.perfetto.dev
//
// The scenario is fully deterministic (fixed kernel seed, virtual time), so
// repeated runs produce byte-identical files; CI archives them as artifacts
// next to the bench trajectories. Exit status is non-zero if any export
// fails or the counters do not reflect the scenario.
#include <cstdio>
#include <string>

#include "drcom/drcr.hpp"
#include "obs/export.hpp"

using namespace drt;

/// Producer: consumes a slice of budget, publishes frames to a mailbox.
class CameraComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    std::int32_t frame = 0;
    while (job.active()) {
      co_await job.consume(microseconds(120));
      job.send("frames",
               rtos::message_from_string("frame#" + std::to_string(++frame)));
      co_await job.next_cycle();
    }
  }
};

/// Consumer: drains the frame mailbox without blocking (periodic poll).
class SinkComponent : public drcom::RtComponent {
 public:
  explicit SinkComponent(rtos::RtKernel& kernel) : kernel_(&kernel) {}

  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(60));
      if (auto* mailbox = job.in_mailbox("frames")) {
        while (kernel_->mailbox_try_receive(*mailbox).has_value()) {
        }
      }
      co_await job.next_cycle();
    }
  }

 private:
  rtos::RtKernel* kernel_;
};

constexpr const char* kCameraXml = R"(<?xml version="1.0"?>
<drt:component name="camera" type="periodic" cpuusage="0.2">
  <implementation bincode="obs.Camera"/>
  <periodictask frequence="500" runoncpu="0" priority="6"/>
  <outport name="frames" interface="RTAI.Mailbox" type="Byte" size="64"/>
</drt:component>)";

constexpr const char* kSinkXml = R"(<?xml version="1.0"?>
<drt:component name="sink" type="periodic" cpuusage="0.1">
  <implementation bincode="obs.Sink"/>
  <periodictask frequence="250" runoncpu="1" priority="5"/>
  <inport name="frames" interface="RTAI.Mailbox" type="Byte" size="64"/>
</drt:component>)";

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::KernelConfig{});
  // Observability is opt-in: enable the flight recorder (Chrome timeline)
  // and the metrics registry (counter/gauge/histogram snapshot).
  kernel.trace().enable();
  kernel.metrics().enable();

  osgi::Framework framework;
  drcom::Drcr drcr(framework, kernel);
  drcr.factories().register_factory(
      "obs.Camera", [] { return std::make_unique<CameraComponent>(); });
  drcr.factories().register_factory(
      "obs.Sink", [&kernel] { return std::make_unique<SinkComponent>(kernel); });

  for (const char* xml : {kCameraXml, kSinkXml}) {
    auto descriptor = drcom::parse_descriptor(xml);
    if (!descriptor.ok() ||
        !drcr.register_component(std::move(descriptor).take()).ok()) {
      std::fprintf(stderr, "obs_export: deployment failed\n");
      return 1;
    }
  }

  engine.run_until(milliseconds(50));

  // One snapshot feeds every exporter.
  const obs::ObsSnapshot snap = drcr.observe();

  std::uint64_t sent = 0;
  for (const auto& counter : snap.metrics.counters) {
    if (counter.name == "ipc.mailbox_sent") sent = counter.value;
  }
  if (sent == 0) {
    std::fprintf(stderr, "obs_export: scenario produced no IPC traffic\n");
    return 1;
  }

  const obs::PrometheusExporter prometheus;
  const obs::JsonExporter json;
  const obs::ChromeTraceExporter chrome;
  for (const obs::Exporter* exporter :
       {static_cast<const obs::Exporter*>(&prometheus),
        static_cast<const obs::Exporter*>(&json),
        static_cast<const obs::Exporter*>(&chrome)}) {
    const std::string path = dir + "/obs_export" + exporter->file_suffix();
    if (auto written = exporter->write_file(snap, path); !written.ok()) {
      std::fprintf(stderr, "obs_export: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote %-14s %s\n", exporter->format(), path.c_str());
  }
  std::printf("snapshot at t=%lldns: %llu messages sent, %zu trace events\n",
              static_cast<long long>(snap.now),
              static_cast<unsigned long long>(sent),
              snap.trace->events().size());
  return 0;
}
