// A port of the RTAI testsuite's `latency` tool — the very application the
// paper's evaluation is "converted from" (§4.2: "The application is
// converted from the RTAI's system performance test suit").
//
// Like the original, it runs a periodic task and prints one row per second
// with that second's latency statistics (RTAI prints lat min/ovl min/lat
// avg/lat max/ovl max), first under light load, then under stress — and
// finally the Table-1 style summary for both phases. Runs the task as a
// full DRCom component so the path measured is the paper's HRC path.
//
//   $ ./latency_test [seconds-per-phase]
#include <cstdio>
#include <cstdlib>

#include "drcom/drcr.hpp"
#include "util/stats.hpp"

using namespace drt;

namespace {

class LatencyTask : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(50));  // the "computation"
      co_await job.next_cycle();
    }
  }
};

constexpr const char* kDescriptor = R"(<?xml version="1.0"?>
<drt:component name="latcal" desc="RTAI latency calibration task"
    type="periodic" cpuusage="0.2">
  <implementation bincode="rtai.LatencyTask"/>
  <periodictask frequence="1000" runoncpu="0" priority="2"/>
</drt:component>)";

struct PhaseSummary {
  StatSummary total;
  double overall_min = 0;
  double overall_max = 0;
};

PhaseSummary run_phase(drcom::Drcr& drcr, rtos::SimEngine& engine,
                       rtos::RtKernel& kernel, const char* label,
                       int phase_seconds) {
  rtos::Task* task = kernel.find_task("latcal");
  task->latency.clear();
  SampleSeries all;
  std::printf("\n== %s ==\n", label);
  std::printf("RTT|  lat min|  lat avg|  lat max| avedev | samples\n");
  double overall_min = 0;
  double overall_max = 0;
  for (int second = 0; second < phase_seconds; ++second) {
    engine.run_until(engine.now() + seconds(1));
    const auto s = task->latency.summary();
    std::printf("RTD|%9.0f|%9.1f|%9.0f|%8.1f|%8zu\n", s.min, s.average,
                s.max, s.avedev, s.count);
    for (double sample : task->latency.samples()) all.add(sample);
    overall_min = second == 0 ? s.min : std::min(overall_min, s.min);
    overall_max = second == 0 ? s.max : std::max(overall_max, s.max);
    task->latency.clear();
  }
  (void)drcr;
  return {all.summary(), overall_min, overall_max};
}

}  // namespace

int main(int argc, char** argv) {
  const int phase_seconds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 5;

  rtos::SimEngine engine;
  rtos::KernelConfig config;  // default latency model = calibrated testbed
  rtos::RtKernel kernel(engine, config);
  osgi::Framework framework;
  drcom::Drcr drcr(framework, kernel);
  drcr.factories().register_factory(
      "rtai.LatencyTask", [] { return std::make_unique<LatencyTask>(); });
  auto descriptor = drcom::parse_descriptor(kDescriptor);
  if (!descriptor.ok() ||
      !drcr.register_component(std::move(descriptor).take()).ok()) {
    std::fprintf(stderr, "failed to deploy the latency task\n");
    return 1;
  }

  // Warmup second (RTAI's tool also discards the first readings).
  engine.run_until(seconds(1));

  const auto light =
      run_phase(drcr, engine, kernel, "light load", phase_seconds);
  kernel.set_load_config(rtos::stress_load());
  const auto stress =
      run_phase(drcr, engine, kernel, "stress load (CPU ~100%)",
                phase_seconds);

  std::printf("\n== summary (ns) ==\n");
  std::printf("%-8s %10s %10s %10s %10s\n", "", "AVERAGE", "AVEDEV", "MIN",
              "MAX");
  std::printf("%-8s %10.1f %10.1f %10.0f %10.0f\n", "light",
              light.total.average, light.total.avedev, light.overall_min,
              light.overall_max);
  std::printf("%-8s %10.1f %10.1f %10.0f %10.0f\n", "stress",
              stress.total.average, stress.total.avedev, stress.overall_min,
              stress.overall_max);
  std::printf(
      "\nCompare Table 1 of the paper: HRC (light) -1334.9 / 3760.03 "
      "/ -24125 / 21489;\nHRC (stress) -21083.74 / 338.89 / -23314 / "
      "-17956.\n");
  return 0;
}
