// Quickstart: the smallest complete DRCom application.
//
// Builds the whole stack (simulated RTAI kernel + OSGi framework + DRCR),
// declares one periodic real-time component in XML, deploys it, lets it run
// one simulated second, pokes it through the management interface, and shuts
// down. Start here; the other examples build on the same pattern.
//
// This example deliberately stays on the original stringly dialect — SHM
// ports plus registry-keyed management, no <protocol>/<expose>/<use> — as the
// compatibility witness: protocol-less descriptors keep working untouched
// and round-trip byte-identically. See examples/smart_camera.cpp for the
// typed capability-channel variant (docs/CHANNELS.md).
//
//   $ ./quickstart
#include <cstdio>

#include "drcom/drcr.hpp"

using namespace drt;

// 1. A real-time component implementation. The body is a coroutine scheduled
//    by the simulated RT kernel; it declares its CPU demand explicitly and
//    lets the framework handle management commands in next_cycle().
class BlinkComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    std::int32_t ticks = 0;
    while (job.active()) {
      co_await job.consume(microseconds(30));  // the "work"
      job.write_i32("beat", 0, ++ticks);       // publish on the out-port
      co_await job.next_cycle();               // commands + wait next period
    }
  }
};

// 2. The declarative part: the component's real-time contract (paper §2.3).
constexpr const char* kBlinkDescriptor = R"(<?xml version="1.0"?>
<drt:component name="blink" desc="quickstart heartbeat"
    type="periodic" cpuusage="0.05">
  <implementation bincode="quickstart.Blink"/>
  <periodictask frequence="100" runoncpu="0" priority="4"/>
  <outport name="beat" interface="RTAI.SHM" type="Integer" size="1"/>
</drt:component>)";

int main() {
  // 3. Bring up the substrate: virtual-time engine, 2-CPU RT kernel, OSGi
  //    framework, and the DRCR runtime attached to both.
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::KernelConfig{});
  osgi::Framework framework;
  drcom::Drcr drcr(framework, kernel);

  // 4. Bind the descriptor's bincode to the C++ implementation (the
  //    substitute for Java's Class.forName — see DESIGN.md).
  drcr.factories().register_factory(
      "quickstart.Blink", [] { return std::make_unique<BlinkComponent>(); });

  // 5. Deploy. The DRCR parses the contract, resolves constraints, admits
  //    the component, and activates its hybrid instance.
  auto descriptor = drcom::parse_descriptor(kBlinkDescriptor);
  if (!descriptor.ok()) {
    std::fprintf(stderr, "bad descriptor: %s\n",
                 descriptor.error().to_string().c_str());
    return 1;
  }
  if (auto registered = drcr.register_component(std::move(descriptor).take());
      !registered.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 registered.error().to_string().c_str());
    return 1;
  }
  std::printf("deployed: blink is %s\n",
              drcom::to_string(*drcr.state_of("blink")));

  // 6. Run one simulated second.
  engine.run_until(seconds(1));
  const rtos::Shm* beat = kernel.shm_find("beat");
  std::printf("after 1s: beat=%d (expected ~100 at 100 Hz)\n",
              beat->read_i32(0).value_or(-1));

  // 7. Manage it through the OSGi service registry, like any other module
  //    would (paper §2.4): suspend, observe, resume.
  auto filter = osgi::Filter::parse("(component.name=blink)").value();
  auto reference =
      framework.registry().get_reference(drcom::kManagementInterface, &filter);
  auto management = framework.registry().get_service<drcom::RtComponentManagement>(
      *reference);
  (void)management->suspend();
  engine.run_until(seconds(2));
  const auto frozen = beat->read_i32(0).value_or(-1);
  std::printf("suspended during second 2: beat=%d (frozen)\n", frozen);
  (void)management->resume();
  engine.run_until(seconds(3));
  std::printf("resumed during second 3: beat=%d\n",
              beat->read_i32(0).value_or(-1));

  const auto status = management->get_status();
  std::printf(
      "status: activations=%llu misses=%llu avg latency=%.0f ns\n",
      static_cast<unsigned long long>(status.stats.activations),
      static_cast<unsigned long long>(status.stats.deadline_misses),
      status.latency.average);

  // 8. Undeploy. The DRCR destroys the task and its ports; nothing leaks.
  (void)drcr.unregister_component("blink");
  std::printf("undeployed: shm present=%s\n",
              kernel.shm_find("beat") == nullptr ? "no" : "yes");
  return 0;
}
