// Deployment console: an Equinox-console-style operator tool over the DRCR.
//
// Runs a scripted operator session against a live system (pass a script file
// with one command per line, or run without arguments for the built-in demo
// session). Commands:
//
//   run <seconds>                advance simulated time
//   deploy-system <file|demo>    deploy a <drt:system> document
//   undeploy-system <name>
//   enable <component> / disable <component>
//   suspend <component> / resume <component>
//   set <component> <key> <value>
//   status [component]           component status / full system table
//   systems | components | tasks
//
// Demonstrates that everything the paper promises is reachable through the
// public API: global view, lifecycle control, runtime tuning, continuous
// deployment — all without touching a single line of real-time code.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "drcom/adaptation.hpp"
#include "drcom/drcr.hpp"
#include "util/strings.hpp"

using namespace drt;

namespace {

class Worker : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      const auto cost = job.property_int("cost_us").value_or(50);
      co_await job.consume(microseconds(cost));
      if (auto* shm = job.out_shm("data")) {
        shm->write_i32(0, static_cast<std::int32_t>(job.now() / 1'000'000),
                       job.now());
      }
      co_await job.next_cycle();
    }
  }
};

constexpr const char* kDemoSystem = R"(<?xml version="1.0"?>
<drt:system name="demo" desc="console demo plant">
  <drt:component name="sensor" type="periodic" cpuusage="0.1">
    <implementation bincode="console.Worker"/>
    <periodictask frequence="500" runoncpu="0" priority="2"/>
    <outport name="data" interface="RTAI.SHM" type="Integer" size="2"/>
    <property name="cost_us" type="Integer" value="60"/>
  </drt:component>
  <drt:component name="filter" type="periodic" cpuusage="0.15">
    <implementation bincode="console.Worker"/>
    <periodictask frequence="250" runoncpu="0" priority="4"/>
    <inport name="data" interface="RTAI.SHM" type="Integer" size="2"/>
    <property name="cost_us" type="Integer" value="120"/>
  </drt:component>
  <connection from="sensor.data" to="filter.data"/>
  <cpubudget cpu="0" limit="0.9"/>
</drt:system>)";

constexpr const char* kDemoScript = R"(# built-in demo session
systems
deploy-system demo
components
run 2
status sensor
set sensor cost_us 90
run 1
status sensor
suspend filter
run 1
status filter
resume filter
run 1
disable sensor
components
enable sensor
run 1
status
tasks
undeploy-system demo
components
)";

class Console {
 public:
  Console()
      : kernel_(engine_, rtos::KernelConfig{}), drcr_(framework_, kernel_) {
    drcr_.factories().register_factory(
        "console.Worker", [] { return std::make_unique<Worker>(); });
  }

  int run_script(std::istream& input) {
    std::string line;
    while (std::getline(input, line)) {
      const auto trimmed = std::string(str::trim(line));
      if (trimmed.empty() || trimmed[0] == '#') continue;
      std::printf("drcom> %s\n", trimmed.c_str());
      if (!execute(trimmed)) return 1;
    }
    return 0;
  }

 private:
  bool execute(const std::string& command) {
    const auto words = str::split_non_empty(command, ' ');
    const std::string& verb = words[0];
    auto fail = [](const std::string& message) {
      std::printf("  error: %s\n", message.c_str());
      return true;  // keep the session going
    };
    if (verb == "run" && words.size() == 2) {
      const auto secs = str::parse_double(words[1]).value_or(1.0);
      engine_.run_until(engine_.now() +
                        static_cast<SimDuration>(secs * 1e9));
      std::printf("  t=%.2fs\n", engine_.now() / 1e9);
    } else if (verb == "deploy-system" && words.size() == 2) {
      std::string xml;
      if (words[1] == "demo") {
        xml = kDemoSystem;
      } else {
        std::ifstream file(words[1]);
        if (!file) return fail("cannot open " + words[1]);
        std::ostringstream buffer;
        buffer << file.rdbuf();
        xml = buffer.str();
      }
      auto system = drcom::parse_system_descriptor(xml);
      if (!system.ok()) return fail(system.error().to_string());
      auto deployed = drcr_.deploy_system(system.value());
      if (!deployed.ok()) return fail(deployed.error().to_string());
      std::printf("  deployed '%s' (%zu members)\n",
                  system.value().name.c_str(),
                  system.value().components.size());
    } else if (verb == "undeploy-system" && words.size() == 2) {
      auto result = drcr_.undeploy_system(words[1]);
      if (!result.ok()) return fail(result.error().to_string());
      std::printf("  undeployed '%s'\n", words[1].c_str());
    } else if ((verb == "enable" || verb == "disable") && words.size() == 2) {
      auto result = verb == "enable" ? drcr_.enable_component(words[1])
                                     : drcr_.disable_component(words[1]);
      if (!result.ok()) return fail(result.error().to_string());
      std::printf("  %s -> %s\n", words[1].c_str(),
                  drcom::to_string(*drcr_.state_of(words[1])));
    } else if ((verb == "suspend" || verb == "resume") && words.size() == 2) {
      auto management = management_for(words[1]);
      if (management == nullptr) return fail("no such active component");
      auto result =
          verb == "suspend" ? management->suspend() : management->resume();
      if (!result.ok()) return fail(result.error().to_string());
      std::printf("  command queued (asynchronous channel)\n");
    } else if (verb == "set" && words.size() == 4) {
      auto management = management_for(words[1]);
      if (management == nullptr) return fail("no such active component");
      auto result = management->set_property(words[2], words[3]);
      if (!result.ok()) return fail(result.error().to_string());
      std::printf("  SET queued\n");
    } else if (verb == "status" && words.size() == 2) {
      auto management = management_for(words[1]);
      if (management == nullptr) return fail("no such active component");
      print_status(management->get_status());
    } else if (verb == "status") {
      for (const auto& name : drcr_.component_names()) {
        if (auto management = management_for(name)) {
          print_status(management->get_status());
        }
      }
    } else if (verb == "systems") {
      const auto systems = drcr_.deployed_systems();
      std::printf("  %zu system(s)\n", systems.size());
      for (const auto& name : systems) {
        std::printf("    %s: %s\n", name.c_str(),
                    str::join(drcr_.system_members(name), ", ").c_str());
      }
    } else if (verb == "components") {
      for (const auto& name : drcr_.component_names()) {
        std::printf("    %-8s %-12s %s\n", name.c_str(),
                    drcom::to_string(*drcr_.state_of(name)),
                    drcr_.component_health(name)->reason.c_str());
      }
      if (drcr_.component_names().empty()) std::printf("    (none)\n");
    } else if (verb == "tasks") {
      for (const auto* task : kernel_.tasks()) {
        std::printf("    #%llu %-8s %-12s prio=%d cpu=%u act=%llu\n",
                    static_cast<unsigned long long>(task->id),
                    task->params.name.c_str(), rtos::to_string(task->state),
                    task->params.priority, task->params.cpu,
                    static_cast<unsigned long long>(task->stats.activations));
      }
    } else {
      return fail("unknown command: " + command);
    }
    return true;
  }

  std::shared_ptr<drcom::RtComponentManagement> management_for(
      const std::string& name) {
    auto filter = osgi::Filter::parse("(component.name=" + name + ")");
    if (!filter.ok()) return nullptr;
    const auto reference = framework_.registry().get_reference(
        drcom::kManagementInterface, &filter.value());
    if (!reference.has_value()) return nullptr;
    return framework_.registry().get_service<drcom::RtComponentManagement>(
        *reference);
  }

  void print_status(const drcom::ComponentStatus& status) {
    std::printf(
        "    %-8s state=%-12s susp=%-3s act=%llu miss=%llu lat(avg/max)="
        "%.0f/%.0f ns%s\n",
        status.component.c_str(), rtos::to_string(status.task_state),
        status.soft_suspended ? "yes" : "no",
        static_cast<unsigned long long>(status.stats.activations),
        static_cast<unsigned long long>(status.stats.deadline_misses),
        status.latency.average, status.latency.max,
        status.failed ? (" FAILED: " + status.failure).c_str() : "");
  }

  rtos::SimEngine engine_;
  rtos::RtKernel kernel_;
  osgi::Framework framework_;
  drcom::Drcr drcr_;
};

}  // namespace

int main(int argc, char** argv) {
  Console console;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    return console.run_script(file);
  }
  std::istringstream demo(kDemoScript);
  return console.run_script(demo);
}
