// The paper's own motivating component (§2.3, Figure 2): a smart camera that
// returns regions of interest from frame data on demand — the DRCom used in
// the ARFLEX robotics project.
//
// Pipeline (all contracts declared in XML, all wiring done by the DRCR):
//
//   camera (100 Hz) --images:SHM-->  roi (100 Hz)  --coords:SHM--> logger
//                                     ^                              (4 Hz)
//        tuner --ctrl:capability------'  typed set_window(i32) calls
//
// The window request channel is a declared capability protocol
// (docs/CHANNELS.md): roi <expose>s "ctrl", the tuner declares
// <use protocol="ctrl" from="roi"/>, and the DRCR binds the route once at
// activation — each tuner cycle is then a single typed call, no registry
// lookup, no string keys on the hot path.
//
// The example also exercises runtime re-configuration: halfway through, an
// operator changes the camera's exposure property and the ROI window size
// through the management services, without touching real-time code.
#include <array>
#include <cstdio>
#include <cstring>

#include "cap/channel.hpp"
#include "drcom/drcr.hpp"

using namespace drt;

namespace {

// -- camera: produces a synthetic 20x20 byte frame; brightness follows the
//    "exposure" property (reconfigurable at run time, §2.4).
class CameraComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    std::uint8_t phase = 0;
    while (job.active()) {
      co_await job.consume(microseconds(200));  // sensor readout
      const auto exposure = job.property_int("exposure").value_or(10);
      std::array<std::byte, 400> frame{};
      for (std::size_t i = 0; i < frame.size(); ++i) {
        // A bright square whose intensity scales with exposure, on a dark
        // background; the square drifts one pixel per frame.
        const std::size_t x = i % 20;
        const std::size_t y = i / 20;
        const std::size_t cx = (5 + phase) % 20;
        const bool bright = x >= cx && x < cx + 4 && y >= 8 && y < 12;
        frame[i] = static_cast<std::byte>(
            bright ? std::min<std::int64_t>(10 * exposure, 255) : 8);
      }
      ++phase;
      job.write_bytes("images", 0, frame);
      co_await job.next_cycle();
    }
  }
};

// -- roi: scans the frame for the brightest window of the size most recently
//    requested over its exposed "ctrl" capability, and publishes the
//    window's coordinates.
class RoiComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    std::int32_t window = 4;
    while (job.active()) {
      co_await job.consume(microseconds(350));  // the scan costs real CPU
      // Drain any pending set_window frames: last writer wins this cycle.
      if (cap::ServerEnd* ctrl = job.cap_server("ctrl")) {
        while (auto frame = ctrl->try_next()) {
          std::int32_t requested = 0;
          std::memcpy(&requested, frame->payload().data(), sizeof(requested));
          if (requested >= 1 && requested <= 20) window = requested;
        }
      }
      const rtos::Shm* frame = job.in_shm("images");
      std::int32_t best_x = 0;
      std::int32_t best_y = 0;
      std::int64_t best_sum = -1;
      for (std::int32_t y = 0; y + window <= 20; ++y) {
        for (std::int32_t x = 0; x + window <= 20; ++x) {
          std::int64_t sum = 0;
          for (std::int32_t dy = 0; dy < window; ++dy) {
            for (std::int32_t dx = 0; dx < window; ++dx) {
              const auto pixel = frame->read_byte(
                  static_cast<std::size_t>((y + dy) * 20 + (x + dx)));
              sum += static_cast<std::int64_t>(pixel.value_or(std::byte{0}));
            }
          }
          if (sum > best_sum) {
            best_sum = sum;
            best_x = x;
            best_y = y;
          }
        }
      }
      job.write_i32("coords", 0, best_x);
      job.write_i32("coords", 1, best_y);
      job.write_i32("coords", 2, window);
      co_await job.next_cycle();
    }
  }
};

// -- logger: 4 Hz observer printing the tracked region.
class LoggerComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(50));
      std::printf("  t=%.2fs  roi at (%d,%d) window=%d\n",
                  static_cast<double>(job.now()) / 1e9,
                  job.read_i32("coords", 0).value_or(-1),
                  job.read_i32("coords", 1).value_or(-1),
                  job.read_i32("coords", 2).value_or(-1));
      co_await job.next_cycle();
    }
  }
};

constexpr const char* kCameraXml = R"(<?xml version="1.0"?>
<drt:component name="camera" desc="this is a smart camera controller"
    type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="exposure" type="Integer" value="10"/>
</drt:component>)";

constexpr const char* kRoiXml = R"(<?xml version="1.0"?>
<drt:component name="roi" desc="region-of-interest extractor"
    type="periodic" cpuusage="0.15">
  <implementation bincode="ua.pats.demo.roi.RTComponent"/>
  <periodictask frequence="100" runoncpu="0" priority="3"/>
  <inport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <outport name="coords" interface="RTAI.SHM" type="Integer" size="4"/>
  <protocol name="ctrl">
    <method name="set_window" ordinal="1" request="4"/>
  </protocol>
  <expose protocol="ctrl"/>
</drt:component>)";

constexpr const char* kLoggerXml = R"(<?xml version="1.0"?>
<drt:component name="roilog" desc="roi logger"
    type="periodic" cpuusage="0.01">
  <implementation bincode="ua.pats.demo.logger.RTComponent"/>
  <periodictask frequence="4" runoncpu="1" priority="8"/>
  <inport name="coords" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>)";

// The window request source is a non-RT tuner bundle in the paper; in this
// example we provide it as a tiny RT component so the DRCR wires everything.
// Its route to roi was bound once at activation; each cycle is one typed
// set_window call on the already-resolved connection.
class TunerComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(5));
      if (cap::Connection* ctrl = job.capability("ctrl")) {
        const auto window = static_cast<std::int32_t>(
            job.property_int("window").value_or(4));
        std::array<std::byte, 4> request{};
        std::memcpy(request.data(), &window, sizeof(window));
        (void)ctrl->call(1, request);
      }
      co_await job.next_cycle();
    }
  }
};

constexpr const char* kTunerXml = R"(<?xml version="1.0"?>
<drt:component name="tuner" desc="roi window request source"
    type="periodic" cpuusage="0.01">
  <implementation bincode="ua.pats.demo.tuner.RTComponent"/>
  <periodictask frequence="10" runoncpu="1" priority="9"/>
  <use protocol="ctrl" from="roi"/>
  <property name="window" type="Integer" value="4"/>
</drt:component>)";

drcom::ComponentDescriptor parse_or_die(const char* xml) {
  auto parsed = drcom::parse_descriptor(xml);
  if (!parsed.ok()) {
    std::fprintf(stderr, "descriptor error: %s\n",
                 parsed.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(parsed).take();
}

std::shared_ptr<drcom::RtComponentManagement> management_for(
    osgi::Framework& framework, const std::string& name) {
  auto filter =
      osgi::Filter::parse("(component.name=" + name + ")").value();
  auto reference =
      framework.registry().get_reference(drcom::kManagementInterface, &filter);
  return framework.registry().get_service<drcom::RtComponentManagement>(
      *reference);
}

}  // namespace

int main() {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::KernelConfig{});
  osgi::Framework framework;
  drcom::Drcr drcr(framework, kernel);

  drcr.factories().register_factory(
      "ua.pats.demo.smartcamera.RTComponent",
      [] { return std::make_unique<CameraComponent>(); });
  drcr.factories().register_factory(
      "ua.pats.demo.roi.RTComponent",
      [] { return std::make_unique<RoiComponent>(); });
  drcr.factories().register_factory(
      "ua.pats.demo.logger.RTComponent",
      [] { return std::make_unique<LoggerComponent>(); });
  drcr.factories().register_factory(
      "ua.pats.demo.tuner.RTComponent",
      [] { return std::make_unique<TunerComponent>(); });

  // Deploy in an order that forces the DRCR to do the dependency work:
  // consumers first, producers last.
  (void)drcr.register_component(parse_or_die(kLoggerXml));
  (void)drcr.register_component(parse_or_die(kRoiXml));
  std::printf("before providers: roi=%s roilog=%s\n",
              drcom::to_string(*drcr.state_of("roi")),
              drcom::to_string(*drcr.state_of("roilog")));
  (void)drcr.register_component(parse_or_die(kCameraXml));
  (void)drcr.register_component(parse_or_die(kTunerXml));
  std::printf("after providers:  camera=%s roi=%s roilog=%s tuner=%s\n\n",
              drcom::to_string(*drcr.state_of("camera")),
              drcom::to_string(*drcr.state_of("roi")),
              drcom::to_string(*drcr.state_of("roilog")),
              drcom::to_string(*drcr.state_of("tuner")));

  std::printf("phase 1: tracking with exposure=10, window=4\n");
  engine.run_until(seconds(1));

  // Runtime reconfiguration through the management services (§2.4).
  std::printf("\nphase 2: operator raises exposure and widens the window\n");
  (void)management_for(framework, "camera")->set_property("exposure", "20");
  (void)management_for(framework, "tuner")->set_property("window", "6");
  engine.run_until(seconds(2));

  const auto camera_status = management_for(framework, "camera")->get_status();
  std::printf(
      "\ncamera after 2s: activations=%llu misses=%llu latency avg=%.0f ns\n",
      static_cast<unsigned long long>(camera_status.stats.activations),
      static_cast<unsigned long long>(camera_status.stats.deadline_misses),
      camera_status.latency.average);
  return camera_status.stats.deadline_misses == 0 ? 0 : 1;
}
