# Empty dependencies file for drt_xml.
# This may be replaced when dependencies are built.
