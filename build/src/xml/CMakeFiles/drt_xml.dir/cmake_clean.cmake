file(REMOVE_RECURSE
  "CMakeFiles/drt_xml.dir/dom.cpp.o"
  "CMakeFiles/drt_xml.dir/dom.cpp.o.d"
  "CMakeFiles/drt_xml.dir/parser.cpp.o"
  "CMakeFiles/drt_xml.dir/parser.cpp.o.d"
  "CMakeFiles/drt_xml.dir/writer.cpp.o"
  "CMakeFiles/drt_xml.dir/writer.cpp.o.d"
  "libdrt_xml.a"
  "libdrt_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drt_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
