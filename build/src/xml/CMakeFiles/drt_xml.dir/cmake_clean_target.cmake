file(REMOVE_RECURSE
  "libdrt_xml.a"
)
