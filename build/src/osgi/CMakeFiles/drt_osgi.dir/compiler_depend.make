# Empty compiler generated dependencies file for drt_osgi.
# This may be replaced when dependencies are built.
