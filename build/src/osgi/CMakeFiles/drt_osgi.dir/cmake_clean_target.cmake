file(REMOVE_RECURSE
  "libdrt_osgi.a"
)
