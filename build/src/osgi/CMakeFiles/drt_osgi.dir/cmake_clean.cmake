file(REMOVE_RECURSE
  "CMakeFiles/drt_osgi.dir/bundle.cpp.o"
  "CMakeFiles/drt_osgi.dir/bundle.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/event_admin.cpp.o"
  "CMakeFiles/drt_osgi.dir/event_admin.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/framework.cpp.o"
  "CMakeFiles/drt_osgi.dir/framework.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/ldap_filter.cpp.o"
  "CMakeFiles/drt_osgi.dir/ldap_filter.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/manifest.cpp.o"
  "CMakeFiles/drt_osgi.dir/manifest.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/properties.cpp.o"
  "CMakeFiles/drt_osgi.dir/properties.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/service_registry.cpp.o"
  "CMakeFiles/drt_osgi.dir/service_registry.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/service_tracker.cpp.o"
  "CMakeFiles/drt_osgi.dir/service_tracker.cpp.o.d"
  "CMakeFiles/drt_osgi.dir/version.cpp.o"
  "CMakeFiles/drt_osgi.dir/version.cpp.o.d"
  "libdrt_osgi.a"
  "libdrt_osgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drt_osgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
