
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osgi/bundle.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/bundle.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/bundle.cpp.o.d"
  "/root/repo/src/osgi/event_admin.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/event_admin.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/event_admin.cpp.o.d"
  "/root/repo/src/osgi/framework.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/framework.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/framework.cpp.o.d"
  "/root/repo/src/osgi/ldap_filter.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/ldap_filter.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/ldap_filter.cpp.o.d"
  "/root/repo/src/osgi/manifest.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/manifest.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/manifest.cpp.o.d"
  "/root/repo/src/osgi/properties.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/properties.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/properties.cpp.o.d"
  "/root/repo/src/osgi/service_registry.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/service_registry.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/service_registry.cpp.o.d"
  "/root/repo/src/osgi/service_tracker.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/service_tracker.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/service_tracker.cpp.o.d"
  "/root/repo/src/osgi/version.cpp" "src/osgi/CMakeFiles/drt_osgi.dir/version.cpp.o" "gcc" "src/osgi/CMakeFiles/drt_osgi.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/drt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
