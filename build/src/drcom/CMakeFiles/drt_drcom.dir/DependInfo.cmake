
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drcom/adaptation.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/adaptation.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/adaptation.cpp.o.d"
  "/root/repo/src/drcom/descriptor.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/descriptor.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/descriptor.cpp.o.d"
  "/root/repo/src/drcom/drcr.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/drcr.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/drcr.cpp.o.d"
  "/root/repo/src/drcom/hybrid.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/hybrid.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/hybrid.cpp.o.d"
  "/root/repo/src/drcom/resolver.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/resolver.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/resolver.cpp.o.d"
  "/root/repo/src/drcom/snapshot.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/snapshot.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/snapshot.cpp.o.d"
  "/root/repo/src/drcom/system_descriptor.cpp" "src/drcom/CMakeFiles/drt_drcom.dir/system_descriptor.cpp.o" "gcc" "src/drcom/CMakeFiles/drt_drcom.dir/system_descriptor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/drt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/drt_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/osgi/CMakeFiles/drt_osgi.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/drt_rtos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
