file(REMOVE_RECURSE
  "CMakeFiles/drt_drcom.dir/adaptation.cpp.o"
  "CMakeFiles/drt_drcom.dir/adaptation.cpp.o.d"
  "CMakeFiles/drt_drcom.dir/descriptor.cpp.o"
  "CMakeFiles/drt_drcom.dir/descriptor.cpp.o.d"
  "CMakeFiles/drt_drcom.dir/drcr.cpp.o"
  "CMakeFiles/drt_drcom.dir/drcr.cpp.o.d"
  "CMakeFiles/drt_drcom.dir/hybrid.cpp.o"
  "CMakeFiles/drt_drcom.dir/hybrid.cpp.o.d"
  "CMakeFiles/drt_drcom.dir/resolver.cpp.o"
  "CMakeFiles/drt_drcom.dir/resolver.cpp.o.d"
  "CMakeFiles/drt_drcom.dir/snapshot.cpp.o"
  "CMakeFiles/drt_drcom.dir/snapshot.cpp.o.d"
  "CMakeFiles/drt_drcom.dir/system_descriptor.cpp.o"
  "CMakeFiles/drt_drcom.dir/system_descriptor.cpp.o.d"
  "libdrt_drcom.a"
  "libdrt_drcom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drt_drcom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
