file(REMOVE_RECURSE
  "libdrt_drcom.a"
)
