# Empty dependencies file for drt_drcom.
# This may be replaced when dependencies are built.
