# Empty compiler generated dependencies file for drt_rtos.
# This may be replaced when dependencies are built.
