file(REMOVE_RECURSE
  "CMakeFiles/drt_rtos.dir/ipc.cpp.o"
  "CMakeFiles/drt_rtos.dir/ipc.cpp.o.d"
  "CMakeFiles/drt_rtos.dir/kernel.cpp.o"
  "CMakeFiles/drt_rtos.dir/kernel.cpp.o.d"
  "CMakeFiles/drt_rtos.dir/latency_model.cpp.o"
  "CMakeFiles/drt_rtos.dir/latency_model.cpp.o.d"
  "CMakeFiles/drt_rtos.dir/load.cpp.o"
  "CMakeFiles/drt_rtos.dir/load.cpp.o.d"
  "CMakeFiles/drt_rtos.dir/sim_engine.cpp.o"
  "CMakeFiles/drt_rtos.dir/sim_engine.cpp.o.d"
  "libdrt_rtos.a"
  "libdrt_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drt_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
