
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtos/ipc.cpp" "src/rtos/CMakeFiles/drt_rtos.dir/ipc.cpp.o" "gcc" "src/rtos/CMakeFiles/drt_rtos.dir/ipc.cpp.o.d"
  "/root/repo/src/rtos/kernel.cpp" "src/rtos/CMakeFiles/drt_rtos.dir/kernel.cpp.o" "gcc" "src/rtos/CMakeFiles/drt_rtos.dir/kernel.cpp.o.d"
  "/root/repo/src/rtos/latency_model.cpp" "src/rtos/CMakeFiles/drt_rtos.dir/latency_model.cpp.o" "gcc" "src/rtos/CMakeFiles/drt_rtos.dir/latency_model.cpp.o.d"
  "/root/repo/src/rtos/load.cpp" "src/rtos/CMakeFiles/drt_rtos.dir/load.cpp.o" "gcc" "src/rtos/CMakeFiles/drt_rtos.dir/load.cpp.o.d"
  "/root/repo/src/rtos/sim_engine.cpp" "src/rtos/CMakeFiles/drt_rtos.dir/sim_engine.cpp.o" "gcc" "src/rtos/CMakeFiles/drt_rtos.dir/sim_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/drt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
