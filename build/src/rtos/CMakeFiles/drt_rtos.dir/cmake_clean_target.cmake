file(REMOVE_RECURSE
  "libdrt_rtos.a"
)
