file(REMOVE_RECURSE
  "libdrt_util.a"
)
