# Empty dependencies file for drt_util.
# This may be replaced when dependencies are built.
