file(REMOVE_RECURSE
  "CMakeFiles/drt_util.dir/logging.cpp.o"
  "CMakeFiles/drt_util.dir/logging.cpp.o.d"
  "CMakeFiles/drt_util.dir/stats.cpp.o"
  "CMakeFiles/drt_util.dir/stats.cpp.o.d"
  "CMakeFiles/drt_util.dir/strings.cpp.o"
  "CMakeFiles/drt_util.dir/strings.cpp.o.d"
  "libdrt_util.a"
  "libdrt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
