file(REMOVE_RECURSE
  "CMakeFiles/smart_camera.dir/smart_camera.cpp.o"
  "CMakeFiles/smart_camera.dir/smart_camera.cpp.o.d"
  "smart_camera"
  "smart_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
