# Empty compiler generated dependencies file for deployment_console.
# This may be replaced when dependencies are built.
