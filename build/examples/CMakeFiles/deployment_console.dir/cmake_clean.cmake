file(REMOVE_RECURSE
  "CMakeFiles/deployment_console.dir/deployment_console.cpp.o"
  "CMakeFiles/deployment_console.dir/deployment_console.cpp.o.d"
  "deployment_console"
  "deployment_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
