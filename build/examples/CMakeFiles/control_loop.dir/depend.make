# Empty dependencies file for control_loop.
# This may be replaced when dependencies are built.
