# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_smart_camera]=] "/root/repo/build/examples/smart_camera")
set_tests_properties([=[example_smart_camera]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_control_loop]=] "/root/repo/build/examples/control_loop")
set_tests_properties([=[example_control_loop]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_adaptive_system]=] "/root/repo/build/examples/adaptive_system")
set_tests_properties([=[example_adaptive_system]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_latency_test]=] "/root/repo/build/examples/latency_test" "2")
set_tests_properties([=[example_latency_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_deployment_console]=] "/root/repo/build/examples/deployment_console")
set_tests_properties([=[example_deployment_console]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
