file(REMOVE_RECURSE
  "CMakeFiles/bench_drcr_scaling.dir/bench_drcr_scaling.cpp.o"
  "CMakeFiles/bench_drcr_scaling.dir/bench_drcr_scaling.cpp.o.d"
  "bench_drcr_scaling"
  "bench_drcr_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drcr_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
