# Empty compiler generated dependencies file for bench_drcr_scaling.
# This may be replaced when dependencies are built.
