file(REMOVE_RECURSE
  "CMakeFiles/bench_rr_quantum.dir/bench_rr_quantum.cpp.o"
  "CMakeFiles/bench_rr_quantum.dir/bench_rr_quantum.cpp.o.d"
  "bench_rr_quantum"
  "bench_rr_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rr_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
