# Empty compiler generated dependencies file for bench_latency_histogram.
# This may be replaced when dependencies are built.
