file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_histogram.dir/bench_latency_histogram.cpp.o"
  "CMakeFiles/bench_latency_histogram.dir/bench_latency_histogram.cpp.o.d"
  "bench_latency_histogram"
  "bench_latency_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
