file(REMOVE_RECURSE
  "CMakeFiles/bench_intra_comm.dir/bench_intra_comm.cpp.o"
  "CMakeFiles/bench_intra_comm.dir/bench_intra_comm.cpp.o.d"
  "bench_intra_comm"
  "bench_intra_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intra_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
