file(REMOVE_RECURSE
  "CMakeFiles/bench_inter_comm.dir/bench_inter_comm.cpp.o"
  "CMakeFiles/bench_inter_comm.dir/bench_inter_comm.cpp.o.d"
  "bench_inter_comm"
  "bench_inter_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inter_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
