# Empty dependencies file for bench_inter_comm.
# This may be replaced when dependencies are built.
