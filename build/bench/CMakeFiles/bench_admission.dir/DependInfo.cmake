
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_admission.cpp" "bench/CMakeFiles/bench_admission.dir/bench_admission.cpp.o" "gcc" "bench/CMakeFiles/bench_admission.dir/bench_admission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drcom/CMakeFiles/drt_drcom.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/drt_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/osgi/CMakeFiles/drt_osgi.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/drt_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/drt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
