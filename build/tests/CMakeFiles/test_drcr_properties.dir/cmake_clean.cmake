file(REMOVE_RECURSE
  "CMakeFiles/test_drcr_properties.dir/test_drcr_properties.cpp.o"
  "CMakeFiles/test_drcr_properties.dir/test_drcr_properties.cpp.o.d"
  "test_drcr_properties"
  "test_drcr_properties.pdb"
  "test_drcr_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drcr_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
