file(REMOVE_RECURSE
  "CMakeFiles/test_mailbox_ports.dir/test_mailbox_ports.cpp.o"
  "CMakeFiles/test_mailbox_ports.dir/test_mailbox_ports.cpp.o.d"
  "test_mailbox_ports"
  "test_mailbox_ports.pdb"
  "test_mailbox_ports[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mailbox_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
