# Empty compiler generated dependencies file for test_mailbox_ports.
# This may be replaced when dependencies are built.
