# Empty dependencies file for test_system_descriptor.
# This may be replaced when dependencies are built.
