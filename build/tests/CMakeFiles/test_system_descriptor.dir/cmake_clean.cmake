file(REMOVE_RECURSE
  "CMakeFiles/test_system_descriptor.dir/test_system_descriptor.cpp.o"
  "CMakeFiles/test_system_descriptor.dir/test_system_descriptor.cpp.o.d"
  "test_system_descriptor"
  "test_system_descriptor.pdb"
  "test_system_descriptor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_descriptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
