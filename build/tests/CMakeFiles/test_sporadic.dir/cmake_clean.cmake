file(REMOVE_RECURSE
  "CMakeFiles/test_sporadic.dir/test_sporadic.cpp.o"
  "CMakeFiles/test_sporadic.dir/test_sporadic.cpp.o.d"
  "test_sporadic"
  "test_sporadic.pdb"
  "test_sporadic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sporadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
