# Empty compiler generated dependencies file for test_sporadic.
# This may be replaced when dependencies are built.
