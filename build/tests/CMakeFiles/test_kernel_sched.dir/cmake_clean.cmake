file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_sched.dir/test_kernel_sched.cpp.o"
  "CMakeFiles/test_kernel_sched.dir/test_kernel_sched.cpp.o.d"
  "test_kernel_sched"
  "test_kernel_sched.pdb"
  "test_kernel_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
