# Empty dependencies file for test_service_registry.
# This may be replaced when dependencies are built.
