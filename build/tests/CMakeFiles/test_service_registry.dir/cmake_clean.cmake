file(REMOVE_RECURSE
  "CMakeFiles/test_service_registry.dir/test_service_registry.cpp.o"
  "CMakeFiles/test_service_registry.dir/test_service_registry.cpp.o.d"
  "test_service_registry"
  "test_service_registry.pdb"
  "test_service_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
