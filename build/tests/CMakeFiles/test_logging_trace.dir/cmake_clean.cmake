file(REMOVE_RECURSE
  "CMakeFiles/test_logging_trace.dir/test_logging_trace.cpp.o"
  "CMakeFiles/test_logging_trace.dir/test_logging_trace.cpp.o.d"
  "test_logging_trace"
  "test_logging_trace.pdb"
  "test_logging_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
