# Empty dependencies file for test_logging_trace.
# This may be replaced when dependencies are built.
