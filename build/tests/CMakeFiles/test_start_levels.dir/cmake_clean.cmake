file(REMOVE_RECURSE
  "CMakeFiles/test_start_levels.dir/test_start_levels.cpp.o"
  "CMakeFiles/test_start_levels.dir/test_start_levels.cpp.o.d"
  "test_start_levels"
  "test_start_levels.pdb"
  "test_start_levels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_start_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
