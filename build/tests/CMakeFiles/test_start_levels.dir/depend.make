# Empty dependencies file for test_start_levels.
# This may be replaced when dependencies are built.
