# Empty dependencies file for test_subtask.
# This may be replaced when dependencies are built.
