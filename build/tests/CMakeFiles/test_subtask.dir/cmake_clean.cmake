file(REMOVE_RECURSE
  "CMakeFiles/test_subtask.dir/test_subtask.cpp.o"
  "CMakeFiles/test_subtask.dir/test_subtask.cpp.o.d"
  "test_subtask"
  "test_subtask.pdb"
  "test_subtask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subtask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
