file(REMOVE_RECURSE
  "CMakeFiles/test_event_admin.dir/test_event_admin.cpp.o"
  "CMakeFiles/test_event_admin.dir/test_event_admin.cpp.o.d"
  "test_event_admin"
  "test_event_admin.pdb"
  "test_event_admin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
