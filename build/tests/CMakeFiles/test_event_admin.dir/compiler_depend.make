# Empty compiler generated dependencies file for test_event_admin.
# This may be replaced when dependencies are built.
