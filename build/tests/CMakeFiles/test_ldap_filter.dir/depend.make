# Empty dependencies file for test_ldap_filter.
# This may be replaced when dependencies are built.
