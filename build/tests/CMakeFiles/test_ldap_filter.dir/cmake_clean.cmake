file(REMOVE_RECURSE
  "CMakeFiles/test_ldap_filter.dir/test_ldap_filter.cpp.o"
  "CMakeFiles/test_ldap_filter.dir/test_ldap_filter.cpp.o.d"
  "test_ldap_filter"
  "test_ldap_filter.pdb"
  "test_ldap_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldap_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
