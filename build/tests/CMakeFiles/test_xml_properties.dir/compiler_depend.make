# Empty compiler generated dependencies file for test_xml_properties.
# This may be replaced when dependencies are built.
