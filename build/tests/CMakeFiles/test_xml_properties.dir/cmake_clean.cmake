file(REMOVE_RECURSE
  "CMakeFiles/test_xml_properties.dir/test_xml_properties.cpp.o"
  "CMakeFiles/test_xml_properties.dir/test_xml_properties.cpp.o.d"
  "test_xml_properties"
  "test_xml_properties.pdb"
  "test_xml_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
