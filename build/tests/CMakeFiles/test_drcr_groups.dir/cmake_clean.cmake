file(REMOVE_RECURSE
  "CMakeFiles/test_drcr_groups.dir/test_drcr_groups.cpp.o"
  "CMakeFiles/test_drcr_groups.dir/test_drcr_groups.cpp.o.d"
  "test_drcr_groups"
  "test_drcr_groups.pdb"
  "test_drcr_groups[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drcr_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
