# Empty dependencies file for test_drcr_groups.
# This may be replaced when dependencies are built.
