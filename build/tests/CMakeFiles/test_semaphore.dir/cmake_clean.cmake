file(REMOVE_RECURSE
  "CMakeFiles/test_semaphore.dir/test_semaphore.cpp.o"
  "CMakeFiles/test_semaphore.dir/test_semaphore.cpp.o.d"
  "test_semaphore"
  "test_semaphore.pdb"
  "test_semaphore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semaphore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
