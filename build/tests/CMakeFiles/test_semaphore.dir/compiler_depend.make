# Empty compiler generated dependencies file for test_semaphore.
# This may be replaced when dependencies are built.
