file(REMOVE_RECURSE
  "CMakeFiles/test_drcr.dir/test_drcr.cpp.o"
  "CMakeFiles/test_drcr.dir/test_drcr.cpp.o.d"
  "test_drcr"
  "test_drcr.pdb"
  "test_drcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
