# Empty compiler generated dependencies file for test_drcr.
# This may be replaced when dependencies are built.
