file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_periodic.dir/test_kernel_periodic.cpp.o"
  "CMakeFiles/test_kernel_periodic.dir/test_kernel_periodic.cpp.o.d"
  "test_kernel_periodic"
  "test_kernel_periodic.pdb"
  "test_kernel_periodic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
