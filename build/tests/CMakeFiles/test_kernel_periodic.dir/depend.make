# Empty dependencies file for test_kernel_periodic.
# This may be replaced when dependencies are built.
