// Event Admin (publish/subscribe) semantics and the DRCR bridge.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "osgi/event_admin.hpp"
#include "test_helpers.hpp"

namespace drt::osgi {
namespace {

TEST(EventAdmin, ExactTopicDelivery) {
  EventAdmin bus;
  std::vector<std::string> seen;
  bus.subscribe("a/b/c",
                [&](const Event& event) { seen.push_back(event.topic); });
  bus.post("a/b/c");
  bus.post("a/b/d");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "a/b/c");
  EXPECT_EQ(bus.delivered_count(), 1u);
}

TEST(EventAdmin, TrailingWildcard) {
  EXPECT_TRUE(EventAdmin::topic_matches("a/b/*", "a/b/c"));
  EXPECT_TRUE(EventAdmin::topic_matches("a/b/*", "a/b/c/d"));
  EXPECT_FALSE(EventAdmin::topic_matches("a/b/*", "a/b"));
  EXPECT_FALSE(EventAdmin::topic_matches("a/b/*", "a/bx/c"));
  EXPECT_TRUE(EventAdmin::topic_matches("*", "anything/at/all"));
  EXPECT_FALSE(EventAdmin::topic_matches("a/b/c", "a/b"));
}

TEST(EventAdmin, PropertyFilterRefinesSubscription) {
  EventAdmin bus;
  int matched = 0;
  bus.subscribe("evt/*", [&](const Event&) { ++matched; },
                Filter::parse("(severity>=3)").value());
  Properties low;
  low.set("severity", std::int64_t{1});
  Properties high;
  high.set("severity", std::int64_t{5});
  bus.post("evt/x", low);
  bus.post("evt/x", high);
  EXPECT_EQ(matched, 1);
}

TEST(EventAdmin, DeliveryInSubscriptionOrder) {
  EventAdmin bus;
  std::vector<int> order;
  bus.subscribe("t", [&](const Event&) { order.push_back(1); });
  bus.subscribe("t", [&](const Event&) { order.push_back(2); });
  bus.subscribe("*", [&](const Event&) { order.push_back(3); });
  bus.post("t");
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventAdmin, UnsubscribeStopsDelivery) {
  EventAdmin bus;
  int count = 0;
  const auto token = bus.subscribe("t", [&](const Event&) { ++count; });
  bus.post("t");
  bus.unsubscribe(token);
  bus.post("t");
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventAdmin, ThrowingHandlerDoesNotBreakBus) {
  EventAdmin bus;
  int delivered = 0;
  bus.subscribe("t", [](const Event&) { throw std::runtime_error("bad"); });
  bus.subscribe("t", [&](const Event&) { ++delivered; });
  bus.post("t");
  EXPECT_EQ(delivered, 1);
}

TEST(EventAdmin, HandlerMaySubscribeDuringDelivery) {
  EventAdmin bus;
  int late = 0;
  bus.subscribe("t", [&](const Event&) {
    bus.subscribe("t", [&](const Event&) { ++late; });
  });
  bus.post("t");   // late handler subscribed but not called for this event
  EXPECT_EQ(late, 0);
  bus.post("t");
  EXPECT_EQ(late, 1);
}

// ----------------------------------------------------------- DRCR bridge --

class Echo : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(1'000);
      co_await job.next_cycle();
    }
  }
};

TEST(EventAdminBridge, DrcrLifecycleEventsReachTheBus) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::testing::quiet_config());
  Framework framework;
  auto bus = std::make_shared<EventAdmin>();
  framework.system_context().register_service(
      std::string(kEventAdminInterface), bus);
  drcom::Drcr drcr(framework, kernel);
  drcr.factories().register_factory(
      "bridge.Echo", [] { return std::make_unique<Echo>(); });

  std::vector<std::string> topics;
  std::vector<std::string> components;
  bus->subscribe("drcom/ComponentEvent/*", [&](const Event& event) {
    topics.push_back(event.topic);
    components.push_back(
        event.properties.get_string("component").value_or(""));
    EXPECT_TRUE(event.properties.get_int("timestamp").has_value());
  });

  drcom::ComponentDescriptor d;
  d.name = "echo";
  d.bincode = "bridge.Echo";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.1;
  d.periodic = drcom::PeriodicSpec{1000.0, 0, 5};
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  ASSERT_TRUE(drcr.unregister_component("echo").ok());

  ASSERT_GE(topics.size(), 4u);
  EXPECT_EQ(topics[0], "drcom/ComponentEvent/REGISTERED");
  EXPECT_EQ(topics[1], "drcom/ComponentEvent/ACTIVATED");
  EXPECT_EQ(topics[2], "drcom/ComponentEvent/DEACTIVATED");
  EXPECT_EQ(topics[3], "drcom/ComponentEvent/UNREGISTERED");
  for (const auto& component : components) EXPECT_EQ(component, "echo");
}

TEST(EventAdminBridge, FilteredSubscriptionSelectsOneComponent) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::testing::quiet_config());
  Framework framework;
  auto bus = std::make_shared<EventAdmin>();
  framework.system_context().register_service(
      std::string(kEventAdminInterface), bus);
  drcom::Drcr drcr(framework, kernel);
  drcr.factories().register_factory(
      "bridge.Echo", [] { return std::make_unique<Echo>(); });

  int target_events = 0;
  bus->subscribe("drcom/ComponentEvent/*",
                 [&](const Event&) { ++target_events; },
                 Filter::parse("(component=two)").value());

  for (const char* name : {"one", "two", "three"}) {
    drcom::ComponentDescriptor d;
    d.name = name;
    d.bincode = "bridge.Echo";
    d.type = rtos::TaskType::kPeriodic;
    d.cpu_usage = 0.1;
    d.periodic = drcom::PeriodicSpec{1000.0, 0, 5};
    ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  }
  EXPECT_EQ(target_events, 2);  // REGISTERED + ACTIVATED for "two" only
}

}  // namespace
}  // namespace drt::osgi
