// Federation layer unit tests: inter-node channels (exact two-sided
// counters, FIFO, sever/restore, retired-counter fold across destruction),
// membership and partitions, the coordinator's summary protocol
// (generation-checked publish vs the bit-identical rescan baseline), O(1)
// best-fit placement with sibling retry, and the live-migration state
// machine including rollback. The parallel-backend channel stress at the
// bottom is the TSan regression for the MessagePool stats race: federation
// accounting must come from the per-channel counters (one writer per side),
// never from registry-summed pool statistics.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fed/coordinator.hpp"
#include "fed/federation.hpp"
#include "rtos/channel.hpp"
#include "test_helpers.hpp"

namespace drt::fed {
namespace {

using drcom::ComponentDescriptor;
using drcom::ComponentState;
using rtos::testing::quiet_config;

class IdleComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) co_await job.next_cycle();
  }
};

FederationConfig fed_config(std::size_t nodes, std::size_t inbox_capacity = 0,
                            rtos::EngineKind engine =
                                rtos::EngineKind::kSequential) {
  FederationConfig config;
  config.nodes = nodes;
  config.engine = engine;
  config.kernel = quiet_config(2);
  config.inbox_capacity = inbox_capacity;
  return config;
}

void register_idle_factories(Federation& federation) {
  for (NodeIndex i = 0; i < federation.size(); ++i) {
    federation.node(i).drcr->factories().register_factory(
        "fed.X", [] { return std::make_unique<IdleComponent>(); });
  }
}

ComponentDescriptor periodic_component(std::string name, double usage,
                                       CpuId cpu = 0, int priority = 5) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "fed.X";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = drcom::PeriodicSpec{100.0, cpu, priority};
  return d;
}

/// Sporadic component owning its trigger mailbox "<name>t" (capacity 8) —
/// the drain/replay target of the migration tests.
ComponentDescriptor sporadic_component(std::string name, double usage) {
  ComponentDescriptor d;
  d.name = name;
  d.bincode = "fed.X";
  d.type = rtos::TaskType::kSporadic;
  d.cpu_usage = usage;
  drcom::PortSpec trigger;
  trigger.direction = drcom::PortDirection::kIn;
  trigger.name = name + "t";
  trigger.interface = drcom::PortInterface::kMailbox;
  trigger.data_type = rtos::DataType::kByte;
  trigger.size = 8;
  drcom::SporadicSpec spec;
  spec.min_interarrival = 1'000'000;
  spec.run_on_cpu = 0;
  spec.priority = 5;
  spec.trigger_port = trigger.name;
  d.sporadic = spec;
  d.ports.push_back(trigger);
  return d;
}

// -------------------------------------------------------------- channels --

TEST(FedChannel, DeliversIntoNamedMailboxAndCountsBothSides) {
  Federation federation(fed_config(2, /*inbox_capacity=*/4));
  rtos::NodeChannel& channel = federation.channel(0, 1, "fed.inbox");
  EXPECT_TRUE(channel.send(rtos::message_from_string("hello")));
  EXPECT_EQ(channel.stats().sent, 1u);
  EXPECT_EQ(channel.stats().sent_bytes, 5u);
  EXPECT_EQ(channel.in_flight(), 1u);
  EXPECT_EQ(federation.in_flight_total(), 1u);

  federation.advance(10'000'000);  // 10 ms: past any cross-group latency
  const rtos::ChannelStats stats = channel.stats();
  EXPECT_EQ(stats.arrived, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.unroutable, 0u);
  EXPECT_EQ(federation.in_flight_total(), 0u);
  EXPECT_EQ(federation.engine().pending_messages(), 0u);

  rtos::RtKernel& target = *federation.node(1).kernel;
  rtos::Mailbox* inbox = target.mailbox_find("fed.inbox");
  ASSERT_NE(inbox, nullptr);
  auto message = target.mailbox_try_receive(*inbox);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(rtos::message_to_string(*message), "hello");
}

TEST(FedChannel, FullMailboxCountsRejectedMissingCountsUnroutable) {
  Federation federation(fed_config(2, /*inbox_capacity=*/1));
  rtos::NodeChannel& inbox_channel = federation.channel(0, 1, "fed.inbox");
  EXPECT_TRUE(inbox_channel.send(rtos::message_from_string("a")));
  EXPECT_TRUE(inbox_channel.send(rtos::message_from_string("b")));
  rtos::NodeChannel& ghost_channel = federation.channel(0, 1, "ghost");
  EXPECT_TRUE(ghost_channel.send(rtos::message_from_string("c")));

  federation.advance(10'000'000);
  EXPECT_EQ(inbox_channel.stats().arrived, 2u);
  EXPECT_EQ(inbox_channel.stats().accepted, 1u);  // capacity 1
  EXPECT_EQ(inbox_channel.stats().rejected, 1u);
  EXPECT_EQ(ghost_channel.stats().arrived, 1u);
  EXPECT_EQ(ghost_channel.stats().unroutable, 1u);
  // Conservation: arrived == accepted + rejected + unroutable, per channel
  // and in the federation-wide fold.
  const rtos::ChannelStats totals = federation.channel_totals();
  EXPECT_EQ(totals.arrived, totals.accepted + totals.dropped());
  EXPECT_EQ(federation.in_flight_total(), 0u);
}

TEST(FedChannel, FifoOrderSurvivesLatencyJitter) {
  // Non-quiet latency model: per-message cross-group jitter is live, and the
  // FIFO clamp must still deliver in send order.
  FederationConfig config;
  config.nodes = 2;
  config.kernel.cpus = 2;
  config.kernel.seed = 99;
  config.inbox_capacity = 16;
  Federation federation(config);
  rtos::NodeChannel& channel = federation.channel(0, 1, "fed.inbox");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(channel.send(rtos::message_from_string(std::to_string(i))));
  }
  federation.advance(50'000'000);
  EXPECT_EQ(channel.stats().accepted, 10u);
  rtos::RtKernel& target = *federation.node(1).kernel;
  rtos::Mailbox* inbox = target.mailbox_find("fed.inbox");
  ASSERT_NE(inbox, nullptr);
  for (int i = 0; i < 10; ++i) {
    auto message = target.mailbox_try_receive(*inbox);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(rtos::message_to_string(*message), std::to_string(i));
  }
}

TEST(FedChannel, SeveredLinkRefusesAtSourceButInFlightArrives) {
  Federation federation(fed_config(2, /*inbox_capacity=*/4));
  rtos::NodeChannel& channel = federation.channel(0, 1, "fed.inbox");
  EXPECT_TRUE(channel.send(rtos::message_from_string("early")));

  federation.partition(0, 1);
  EXPECT_TRUE(channel.severed());
  EXPECT_FALSE(channel.send(rtos::message_from_string("cut")));
  EXPECT_EQ(channel.stats().severed, 1u);

  federation.advance(10'000'000);
  EXPECT_EQ(channel.stats().accepted, 1u);  // the pre-cut message arrived

  federation.heal(0, 1);
  EXPECT_FALSE(channel.severed());
  EXPECT_TRUE(channel.send(rtos::message_from_string("healed")));
}

TEST(FedChannel, DestroyRefusesWhileInFlightThenFoldsIntoRetired) {
  Federation federation(fed_config(2, /*inbox_capacity=*/4));
  rtos::NodeChannel& channel = federation.channel(0, 1, "fed.inbox");
  EXPECT_TRUE(channel.send(rtos::message_from_string("xy")));

  auto busy = federation.destroy_channel(0, 1, "fed.inbox");
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.error().code, "fed.channel_busy");

  federation.advance(10'000'000);
  ASSERT_TRUE(federation.destroy_channel(0, 1, "fed.inbox").ok());
  EXPECT_EQ(federation.channel_count(), 0u);
  // The fold is exact: totals after destruction equal the retired counters.
  const RetiredChannelCounters& retired = federation.retired_channels();
  EXPECT_EQ(retired.sent, 1u);
  EXPECT_EQ(retired.sent_bytes, 2u);
  EXPECT_EQ(retired.accepted, 1u);
  const rtos::ChannelStats totals = federation.channel_totals();
  EXPECT_EQ(totals.sent, 1u);
  EXPECT_EQ(totals.accepted, 1u);

  auto missing = federation.destroy_channel(0, 1, "fed.inbox");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, "fed.no_such_channel");
}

// ------------------------------------------------------------ membership --

TEST(FedMembership, LeaveSeversEveryTouchingChannelJoinHeals) {
  Federation federation(fed_config(3, /*inbox_capacity=*/4));
  rtos::NodeChannel& to_one = federation.channel(0, 1, "fed.inbox");
  rtos::NodeChannel& from_one = federation.channel(1, 2, "fed.inbox");
  rtos::NodeChannel& bystander = federation.channel(0, 2, "fed.inbox");

  federation.leave(1);
  EXPECT_FALSE(federation.alive(1));
  EXPECT_EQ(federation.alive_count(), 2u);
  EXPECT_TRUE(to_one.severed());
  EXPECT_TRUE(from_one.severed());
  EXPECT_FALSE(bystander.severed());

  federation.join(1);
  EXPECT_TRUE(to_one.severed() == false && from_one.severed() == false);
}

TEST(FedMembership, ExplicitPartitionOutlivesLeaveJoinCycle) {
  Federation federation(fed_config(2, /*inbox_capacity=*/4));
  rtos::NodeChannel& channel = federation.channel(0, 1, "fed.inbox");
  federation.partition(0, 1);
  federation.leave(1);
  federation.join(1);
  EXPECT_TRUE(channel.severed());  // the partition was never healed
  federation.heal(0, 1);
  EXPECT_FALSE(channel.severed());
}

TEST(FedMembership, ChannelCreatedTowardsDeadNodeStartsSevered) {
  Federation federation(fed_config(2, /*inbox_capacity=*/4));
  federation.leave(1);
  EXPECT_TRUE(federation.channel(0, 1, "fed.inbox").severed());
}

// ------------------------------------------------------------- summaries --

TEST(FedCoordinator, PublishIsGenerationCheckedAndTracksMutations) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  EXPECT_TRUE(coordinator.summary_fresh(0));

  // A mutation behind the coordinator's back stales the summary; publish
  // refreshes it from the cached sums.
  ASSERT_TRUE(federation.node(0)
                  .drcr->register_component(periodic_component("a", 0.3))
                  .ok());
  EXPECT_FALSE(coordinator.summary_fresh(0));
  coordinator.publish(0);
  EXPECT_TRUE(coordinator.summary_fresh(0));
  EXPECT_EQ(coordinator.summary(0).contracts.declared[0], 0.3);
  EXPECT_EQ(coordinator.summary(0).headroom[0], 0.9 - 0.3);
  EXPECT_EQ(coordinator.summary(0).contracts.active_components, 1u);
}

TEST(FedCoordinator, RescanBaselineIsBitIdenticalToCachedSummary) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  // An awkward accumulation order on purpose: the rescan fold must follow
  // global activation order to stay bit-identical under FP non-associativity.
  const double usages[] = {0.13, 0.07, 0.21, 0.04, 0.11};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(coordinator
                    .place(periodic_component("c" + std::to_string(i),
                                              usages[i],
                                              static_cast<CpuId>(i % 2)))
                    .ok());
  }
  coordinator.publish_all();
  std::vector<NodeSummary> cached;
  for (NodeIndex node = 0; node < federation.size(); ++node) {
    cached.push_back(coordinator.summary(node));
  }
  coordinator.publish_all_rescan();
  for (NodeIndex node = 0; node < federation.size(); ++node) {
    const NodeSummary& rescanned = coordinator.summary(node);
    EXPECT_EQ(rescanned.contracts.declared, cached[node].contracts.declared);
    EXPECT_EQ(rescanned.contracts.recurring, cached[node].contracts.recurring);
    EXPECT_EQ(rescanned.contracts.active_components,
              cached[node].contracts.active_components);
    EXPECT_EQ(rescanned.headroom, cached[node].headroom);
  }
}

TEST(FedCoordinator, InvalidateEmptiesIndexUntilRepublish) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  EXPECT_TRUE(coordinator.select_node(0).has_value());
  coordinator.invalidate();
  EXPECT_FALSE(coordinator.select_node(0).has_value());
  EXPECT_TRUE(coordinator.placement_order(0).empty());
  coordinator.publish_all();
  EXPECT_TRUE(coordinator.select_node(0).has_value());
}

// ------------------------------------------------------------- placement --

TEST(FedCoordinator, SelectNodePicksMostHeadroomTiesByLowestIndex) {
  Federation federation(fed_config(3));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  // All equal: the tie breaks towards node 0.
  EXPECT_EQ(coordinator.select_node(0), NodeIndex{0});

  auto first = coordinator.place(periodic_component("a", 0.4));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), NodeIndex{0});
  // Node 0 lost headroom on CPU 0; the next best fit is node 1.
  EXPECT_EQ(coordinator.select_node(0), NodeIndex{1});
  auto second = coordinator.place(periodic_component("b", 0.4));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), NodeIndex{1});
  EXPECT_EQ(coordinator.select_node(0), NodeIndex{2});
  // The other CPU is untouched everywhere: tie back to node 0.
  EXPECT_EQ(coordinator.select_node(1), NodeIndex{0});
  EXPECT_EQ(coordinator.stats().placements, 2u);
}

TEST(FedCoordinator, PlacementRetriesSiblingsAndLeavesLastUnsatisfied) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  ASSERT_TRUE(coordinator.place(periodic_component("a", 0.6)).ok());
  ASSERT_TRUE(coordinator.place(periodic_component("b", 0.6)).ok());
  ASSERT_EQ(coordinator.node_of("a"), NodeIndex{0});
  ASSERT_EQ(coordinator.node_of("b"), NodeIndex{1});

  // 0.6 + 0.6 > 0.9 on both nodes: every sibling rejects, and the component
  // must end registered-but-unsatisfied on the LAST candidate tried —
  // exactly what a bare DRCR leaves behind.
  auto rejected = coordinator.place(periodic_component("c", 0.6));
  ASSERT_TRUE(rejected.ok());
  const NodeIndex last = rejected.value();
  EXPECT_EQ(federation.node(last).drcr->state_of("c"),
            ComponentState::kUnsatisfied);
  EXPECT_EQ(coordinator.stats().rejects, 1u);
  EXPECT_EQ(coordinator.stats().retries, 1u);
  // No dual admission: exactly one node knows the name.
  std::size_t owners = 0;
  for (NodeIndex node = 0; node < federation.size(); ++node) {
    if (federation.node(node).drcr->descriptor_of("c") != nullptr) ++owners;
  }
  EXPECT_EQ(owners, 1u);

  // Freeing capacity lets a retry settle.
  ASSERT_TRUE(coordinator.remove("c").ok());
  ASSERT_TRUE(coordinator.remove("a").ok());
  auto settled = coordinator.place(periodic_component("c", 0.6));
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled.value(), NodeIndex{0});
  EXPECT_EQ(federation.node(0).drcr->state_of("c"), ComponentState::kActive);
}

TEST(FedCoordinator, DuplicateNameForwardsToOwnerForIdenticalError) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  ASSERT_TRUE(coordinator.place(periodic_component("dup", 0.1)).ok());
  auto duplicate = coordinator.place(periodic_component("dup", 0.1));
  ASSERT_FALSE(duplicate.ok());
  // The error is the owning DRCR's own duplicate error, not a fed.* one.
  EXPECT_EQ(duplicate.error().code.find("fed."), std::string::npos);
}

TEST(FedCoordinator, SystemPlacementRoutesWholeSystemToOneNode) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  // Bias node 0 so the system's best fit is node 1.
  ASSERT_TRUE(coordinator.place(periodic_component("bias", 0.5)).ok());

  drcom::SystemDescriptor system;
  system.name = "sys";
  system.components.push_back(periodic_component("m1", 0.2, 0));
  system.components.push_back(periodic_component("m2", 0.2, 1));
  auto placed = coordinator.place_system(system);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed.value(), NodeIndex{1});
  EXPECT_EQ(federation.node(1).drcr->state_of("m1"), ComponentState::kActive);
  EXPECT_EQ(federation.node(1).drcr->state_of("m2"), ComponentState::kActive);
  EXPECT_EQ(coordinator.node_of("m1"), NodeIndex{1});

  ASSERT_TRUE(coordinator.undeploy("sys").ok());
  EXPECT_FALSE(coordinator.node_of("m1").has_value());
}

// ------------------------------------------------------------- migration --

TEST(FedMigration, MovesComponentAndReplaysDrainedMailbox) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  auto placed = coordinator.place(sporadic_component("mig", 0.2));
  ASSERT_TRUE(placed.ok());
  const NodeIndex src = placed.value();
  const NodeIndex dst = 1 - src;
  ASSERT_EQ(federation.node(src).drcr->state_of("mig"),
            ComponentState::kActive);

  // Queue trigger messages without running the engine: migration must drain
  // and replay them, FIFO, into the re-created mailbox on the target.
  rtos::RtKernel& src_kernel = *federation.node(src).kernel;
  rtos::Mailbox* trigger = src_kernel.mailbox_find("migt");
  ASSERT_NE(trigger, nullptr);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(src_kernel.mailbox_send(
        *trigger, rtos::message_from_string("m" + std::to_string(i))));
  }

  ASSERT_TRUE(coordinator.migrate("mig", dst).ok());
  EXPECT_EQ(coordinator.node_of("mig"), dst);
  EXPECT_EQ(federation.node(src).drcr->descriptor_of("mig"), nullptr);
  EXPECT_EQ(federation.node(dst).drcr->state_of("mig"),
            ComponentState::kActive);
  EXPECT_EQ(coordinator.stats().migrations, 1u);

  // The replay went through the channel layer.
  rtos::NodeChannel* replay = federation.find_channel(src, dst, "migt");
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(replay->stats().sent, 3u);
  federation.advance(50'000'000);
  EXPECT_EQ(replay->stats().arrived, 3u);
  EXPECT_EQ(replay->stats().accepted, 3u);
  EXPECT_EQ(federation.in_flight_total(), 0u);
}

TEST(FedMigration, TargetRejectionRollsBackToSource) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  // Fill node 1 so it cannot admit the migrating 0.5 contract.
  ASSERT_TRUE(
      federation.node(1).drcr->register_component(periodic_component("fill", 0.6))
          .ok());
  coordinator.publish_all();
  ASSERT_TRUE(coordinator.place(periodic_component("mig", 0.5)).ok());
  ASSERT_EQ(coordinator.node_of("mig"), NodeIndex{0});

  auto failed = coordinator.migrate("mig", 1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, "fed.migration_rejected");
  EXPECT_EQ(coordinator.stats().migration_failures, 1u);
  // All-or-nothing: still active on the source, absent on the target.
  EXPECT_EQ(federation.node(0).drcr->state_of("mig"), ComponentState::kActive);
  EXPECT_EQ(federation.node(1).drcr->descriptor_of("mig"), nullptr);
  EXPECT_EQ(coordinator.node_of("mig"), NodeIndex{0});
}

TEST(FedMigration, PreservesDisabledState) {
  Federation federation(fed_config(2));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  ASSERT_TRUE(coordinator.place(periodic_component("m", 0.2)).ok());
  const NodeIndex src = *coordinator.node_of("m");
  ASSERT_TRUE(federation.node(src).drcr->disable_component("m").ok());
  coordinator.publish_all();
  ASSERT_TRUE(coordinator.migrate("m", 1 - src).ok());
  EXPECT_EQ(federation.node(1 - src).drcr->state_of("m"),
            ComponentState::kDisabled);
}

TEST(FedMigration, RefusesSystemMembersDeadAndPartitionedTargets) {
  Federation federation(fed_config(3));
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);

  drcom::SystemDescriptor system;
  system.name = "sys";
  system.components.push_back(periodic_component("sm1", 0.1));
  system.components.push_back(periodic_component("sm2", 0.1, 1));
  ASSERT_TRUE(coordinator.place_system(system).ok());
  const NodeIndex owner = *coordinator.node_of("sm1");
  auto member = coordinator.migrate("sm1", (owner + 1) % 3);
  ASSERT_FALSE(member.ok());
  EXPECT_EQ(member.error().code, "fed.system_member");

  ASSERT_TRUE(coordinator.place(periodic_component("solo", 0.1)).ok());
  const NodeIndex src = *coordinator.node_of("solo");
  const NodeIndex dst = (src + 1) % 3;

  federation.leave(dst);
  auto dead = coordinator.migrate("solo", dst);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, "fed.bad_target");
  federation.join(dst);

  federation.partition(src, dst);
  auto cut = coordinator.migrate("solo", dst);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.error().code, "fed.partitioned");
  federation.heal(src, dst);

  EXPECT_FALSE(coordinator.migrate("ghost", dst).ok());
  EXPECT_TRUE(coordinator.migrate("solo", src).ok());  // self-move: no-op
  EXPECT_EQ(coordinator.stats().migrations, 0u);
}

// ---------------------------------------------- TSan regression (stress) --

// Exact-counter accounting under the parallel backend: four nodes on four
// worker threads exchange bursts over every directed pair while components
// churn. ChannelStats are plain fields written by exactly one shard's
// execution context per side; under TSan this test is the regression for
// the registry-summed MessagePool::stats() race the federation layer must
// never rely on. Conservation must hold exactly at every barrier.
TEST(FedChannel, CountersExactUnderParallelBackendChurn) {
  // Default (stochastic) latency model: the conservative backend needs the
  // real positive cross-group lookahead, and jitter makes the interleavings
  // worth racing.
  FederationConfig config;
  config.nodes = 4;
  config.engine = rtos::EngineKind::kParallel;
  config.kernel.cpus = 2;
  config.kernel.seed = 7;
  config.inbox_capacity = 8;
  Federation federation(config);
  register_idle_factories(federation);
  FederationCoordinator coordinator(federation);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(coordinator
                    .place(periodic_component("w" + std::to_string(i), 0.1,
                                              static_cast<CpuId>(i % 2)))
                    .ok());
  }
  std::uint64_t expected_sent = 0;
  for (int round = 0; round < 20; ++round) {
    for (NodeIndex src = 0; src < 4; ++src) {
      for (NodeIndex dst = 0; dst < 4; ++dst) {
        if (src == dst) continue;
        rtos::NodeChannel& channel = federation.channel(src, dst, "fed.inbox");
        if (channel.send(rtos::message_from_string("r"))) ++expected_sent;
      }
    }
    federation.advance(5'000'000);
    // Between runs the backend's barriers order both sides: the books must
    // balance exactly, mid-churn, every round.
    const rtos::ChannelStats totals = federation.channel_totals();
    EXPECT_EQ(totals.sent, expected_sent);
    EXPECT_EQ(totals.arrived, totals.accepted + totals.dropped());
    EXPECT_EQ(totals.sent - totals.arrived, federation.in_flight_total());
    EXPECT_EQ(federation.in_flight_total(),
              federation.engine().pending_messages());
    // Drain the inboxes so capacity-8 mailboxes keep accepting.
    for (NodeIndex node = 0; node < 4; ++node) {
      rtos::RtKernel& kernel = *federation.node(node).kernel;
      if (rtos::Mailbox* inbox = kernel.mailbox_find("fed.inbox")) {
        while (kernel.mailbox_try_receive(*inbox)) {
        }
      }
    }
  }
  federation.advance(50'000'000);
  EXPECT_EQ(federation.in_flight_total(), 0u);
  const rtos::ChannelStats totals = federation.channel_totals();
  EXPECT_EQ(totals.sent, expected_sent);
  EXPECT_EQ(totals.arrived, expected_sent);
}

}  // namespace
}  // namespace drt::fed
