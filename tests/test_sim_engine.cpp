// Unit tests for the discrete-event engine: ordering, cancellation, clock
// semantics.
#include "rtos/sim_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace drt::rtos {
namespace {

TEST(SimEngine, StartsAtTimeZero) {
  SimEngine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(SimEngine, FiresEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(SimEngine, SameTimeEventsFireInScheduleOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(5, [&] { order.push_back(1); });
  engine.schedule_at(5, [&] { order.push_back(2); });
  engine.schedule_at(5, [&] { order.push_back(3); });
  engine.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngine, ScheduleAfterUsesRelativeDelay) {
  SimEngine engine;
  SimTime seen = -1;
  engine.schedule_at(100, [&] {
    engine.schedule_after(50, [&] { seen = engine.now(); });
  });
  engine.run_to_completion();
  EXPECT_EQ(seen, 150);
}

TEST(SimEngine, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(10, [&] { fired = true; });
  engine.cancel(id);
  engine.run_to_completion();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.idle());
}

TEST(SimEngine, CancelOfFiredEventIsNoOp) {
  SimEngine engine;
  int count = 0;
  const EventId id = engine.schedule_at(10, [&] { ++count; });
  engine.run_to_completion();
  engine.cancel(id);  // stale: must not disturb anything
  engine.schedule_at(20, [&] { ++count; });
  engine.run_to_completion();
  EXPECT_EQ(count, 2);
}

TEST(SimEngine, CancelInvalidIdIsNoOp) {
  SimEngine engine;
  engine.cancel(kInvalidEvent);
  engine.cancel(999'999);
  EXPECT_TRUE(engine.idle());
}

TEST(SimEngine, RunUntilStopsAtDeadline) {
  SimEngine engine;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 100; t += 10) {
    engine.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  const std::size_t count = engine.run_until(45);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(engine.now(), 45);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(engine.pending_events(), 6u);
  engine.run_until(1'000);
  EXPECT_EQ(fired.size(), 10u);
}

TEST(SimEngine, RunUntilAdvancesClockEvenWithoutEvents) {
  SimEngine engine;
  engine.run_until(12'345);
  EXPECT_EQ(engine.now(), 12'345);
}

TEST(SimEngine, RunUntilWithCancelledHeadDoesNotLoseLaterEvents) {
  SimEngine engine;
  bool late_fired = false;
  const EventId head = engine.schedule_at(10, [] {});
  engine.schedule_at(100, [&] { late_fired = true; });
  engine.cancel(head);
  engine.run_until(50);  // deadline between the cancelled and live event
  EXPECT_FALSE(late_fired);
  engine.run_until(200);
  EXPECT_TRUE(late_fired);
}

TEST(SimEngine, EventsScheduledDuringRunAreExecuted) {
  SimEngine engine;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) engine.schedule_after(10, step);
  };
  engine.schedule_at(0, step);
  engine.run_to_completion();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(SimEngine, RunToCompletionHonoursMaxEvents) {
  SimEngine engine;
  std::function<void()> forever = [&] { engine.schedule_after(1, forever); };
  engine.schedule_at(0, forever);
  const std::size_t fired = engine.run_to_completion(100);
  EXPECT_EQ(fired, 100u);
}

TEST(SimEngine, PendingEventsTracksCancellation) {
  SimEngine engine;
  const EventId a = engine.schedule_at(10, [] {});
  engine.schedule_at(20, [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.cancel(a);
  EXPECT_EQ(engine.pending_events(), 1u);
  EXPECT_FALSE(engine.idle());
  engine.run_to_completion();
  EXPECT_TRUE(engine.idle());
}

}  // namespace
}  // namespace drt::rtos
