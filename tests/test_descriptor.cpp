// DRCom descriptor parsing/validation, pinned to the paper's Figure-2 sample.
#include <gtest/gtest.h>

#include <cmath>

#include "drcom/descriptor.hpp"

namespace drt::drcom {
namespace {

// Figure 2 of the paper, verbatim dialect (including the "frequence" and
// "runoncup" spellings).
constexpr const char* kCameraXml = R"(<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
    type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
  <property name="prox00" type="Integer" value="6"/>
</drt:component>)";

TEST(Descriptor, ParsesFigure2Camera) {
  auto parsed = parse_descriptor(kCameraXml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const ComponentDescriptor& d = parsed.value();
  EXPECT_EQ(d.name, "camera");
  EXPECT_EQ(d.description, "this is a smart camera controller");
  EXPECT_EQ(d.type, rtos::TaskType::kPeriodic);
  EXPECT_TRUE(d.enabled);
  EXPECT_DOUBLE_EQ(d.cpu_usage, 0.1);
  EXPECT_EQ(d.bincode, "ua.pats.demo.smartcamera.RTComponent");
  ASSERT_TRUE(d.periodic.has_value());
  EXPECT_DOUBLE_EQ(d.periodic->frequency_hz, 100.0);
  EXPECT_EQ(d.periodic->run_on_cpu, 0u);
  EXPECT_EQ(d.periodic->priority, 2);
  EXPECT_EQ(d.periodic->period(), milliseconds(10));  // paper: 10ms period
  ASSERT_EQ(d.ports.size(), 2u);
  EXPECT_EQ(d.outports().size(), 1u);
  EXPECT_EQ(d.inports().size(), 1u);
  const PortSpec* images = d.find_port("images");
  ASSERT_NE(images, nullptr);
  EXPECT_EQ(images->direction, PortDirection::kOut);
  EXPECT_EQ(images->interface, PortInterface::kShm);
  EXPECT_EQ(images->data_type, rtos::DataType::kByte);
  EXPECT_EQ(images->size, 400u);
  EXPECT_EQ(images->byte_size(), 400u);
  const PortSpec* xysize = d.find_port("xysize");
  ASSERT_NE(xysize, nullptr);
  EXPECT_EQ(xysize->data_type, rtos::DataType::kInteger);
  EXPECT_EQ(xysize->byte_size(), 1600u);  // 400 integers
  EXPECT_EQ(d.properties.get_int("prox00").value(), 6);
}

TEST(Descriptor, AcceptsModernSpellings) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="tick" type="periodic" cpuusage="0.2">
      <implementation bincode="x.Y"/>
      <periodictask frequency="1000" runoncpu="1" priority="3"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().periodic->run_on_cpu, 1u);
  EXPECT_EQ(parsed.value().periodic->period(), milliseconds(1));
}

TEST(Descriptor, AperiodicNeedsNoPeriodicTask) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="evt" type="aperiodic">
      <implementation bincode="x.Y"/>
      <inport name="cmds" interface="RTAI.Mailbox" type="Byte" size="16"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().type, rtos::TaskType::kAperiodic);
  EXPECT_FALSE(parsed.value().periodic.has_value());
  EXPECT_EQ(parsed.value().find_port("cmds")->interface,
            PortInterface::kMailbox);
}

TEST(Descriptor, DisabledComponent) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="off" type="aperiodic" enabled="false">
      <implementation bincode="x.Y"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().enabled);
}

TEST(Descriptor, TypedProperties) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="p" type="aperiodic">
      <implementation bincode="x.Y"/>
      <property name="count" type="Integer" value="42"/>
      <property name="rate" type="Double" value="0.5"/>
      <property name="label" type="String" value="hello"/>
      <property name="flag" type="Boolean" value="true"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& props = parsed.value().properties;
  EXPECT_EQ(props.get_int("count").value(), 42);
  EXPECT_DOUBLE_EQ(props.get_double("rate").value(), 0.5);
  EXPECT_EQ(props.get_string("label").value(), "hello");
  EXPECT_TRUE(props.get_bool("flag").value());
}

struct BadDescriptor {
  const char* name;
  const char* xml;
};

class DescriptorErrors : public ::testing::TestWithParam<BadDescriptor> {};

TEST_P(DescriptorErrors, Rejected) {
  auto parsed = parse_descriptor(GetParam().xml);
  ASSERT_FALSE(parsed.ok()) << GetParam().name;
  EXPECT_EQ(parsed.error().code, "drcom.bad_descriptor") << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DescriptorErrors,
    ::testing::Values(
        BadDescriptor{"no_name",
                      "<drt:component type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"name_too_long",
                      "<drt:component name=\"toolongname\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"no_bincode",
                      "<drt:component name=\"a\" type=\"aperiodic\"/>"},
        BadDescriptor{"bad_type",
                      "<drt:component name=\"a\" type=\"sporadic\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"periodic_without_task",
                      "<drt:component name=\"a\" type=\"periodic\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"zero_frequency",
                      "<drt:component name=\"a\" type=\"periodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<periodictask frequence=\"0\"/></drt:component>"},
        BadDescriptor{"cpuusage_over_one",
                      "<drt:component name=\"a\" type=\"aperiodic\" "
                      "cpuusage=\"1.5\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"negative_cpuusage",
                      "<drt:component name=\"a\" type=\"aperiodic\" "
                      "cpuusage=\"-0.1\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"bad_enabled",
                      "<drt:component name=\"a\" type=\"aperiodic\" "
                      "enabled=\"yes\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"port_no_name",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport interface=\"RTAI.SHM\" type=\"Byte\" "
                      "size=\"4\"/></drt:component>"},
        BadDescriptor{"port_name_too_long",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport name=\"waytoolong\" interface=\"RTAI.SHM\" "
                      "type=\"Byte\" size=\"4\"/></drt:component>"},
        BadDescriptor{"port_bad_interface",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport name=\"p\" interface=\"CORBA\" type=\"Byte\" "
                      "size=\"4\"/></drt:component>"},
        BadDescriptor{"port_bad_type",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport name=\"p\" interface=\"RTAI.SHM\" "
                      "type=\"Float\" size=\"4\"/></drt:component>"},
        BadDescriptor{"port_zero_size",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport name=\"p\" interface=\"RTAI.SHM\" "
                      "type=\"Byte\" size=\"0\"/></drt:component>"},
        BadDescriptor{"duplicate_port",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport name=\"p\" interface=\"RTAI.SHM\" "
                      "type=\"Byte\" size=\"4\"/>"
                      "<inport name=\"p\" interface=\"RTAI.SHM\" "
                      "type=\"Byte\" size=\"4\"/></drt:component>"},
        BadDescriptor{"unknown_element",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<mystery/></drt:component>"},
        BadDescriptor{"bad_property_int",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<property name=\"p\" type=\"Integer\" value=\"x\"/>"
                      "</drt:component>"},
        BadDescriptor{"nan_cpuusage",
                      "<drt:component name=\"a\" type=\"aperiodic\" "
                      "cpuusage=\"nan\">"
                      "<implementation bincode=\"x\"/></drt:component>"},
        BadDescriptor{"nan_frequency",
                      "<drt:component name=\"a\" type=\"periodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<periodictask frequence=\"nan\"/></drt:component>"},
        BadDescriptor{"inf_frequency",
                      "<drt:component name=\"a\" type=\"periodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<periodictask frequence=\"inf\"/></drt:component>"},
        BadDescriptor{"priority_out_of_range",
                      "<drt:component name=\"a\" type=\"periodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<periodictask frequence=\"100\" priority=\"9000\"/>"
                      "</drt:component>"},
        BadDescriptor{"port_size_overflows_cap",
                      "<drt:component name=\"a\" type=\"aperiodic\">"
                      "<implementation bincode=\"x\"/>"
                      "<outport name=\"p\" interface=\"RTAI.SHM\" "
                      "type=\"Integer\" size=\"999999999\"/>"
                      "</drt:component>"}),
    [](const auto& info) { return info.param.name; });

// The NaN/priority/size guards must hold for programmatic descriptors too —
// validate() is the choke point, not just the XML front-end.
TEST(Descriptor, ValidateRejectsNonFiniteAndOversized) {
  ComponentDescriptor d;
  d.name = "a";
  d.bincode = "x";
  d.type = rtos::TaskType::kPeriodic;
  d.periodic = PeriodicSpec{100.0, 0, 5};

  ComponentDescriptor nan_usage = d;
  nan_usage.cpu_usage = std::nan("");
  EXPECT_EQ(validate(nan_usage).error().code, "drcom.bad_descriptor");

  ComponentDescriptor nan_freq = d;
  nan_freq.periodic->frequency_hz = std::nan("");
  EXPECT_EQ(validate(nan_freq).error().code, "drcom.bad_descriptor");

  ComponentDescriptor hot = d;
  hot.periodic->priority = 1000;
  auto bad_priority = validate(hot);
  ASSERT_FALSE(bad_priority.ok());
  EXPECT_NE(bad_priority.error().message.find("priority"),
            std::string::npos);

  ComponentDescriptor wide = d;
  wide.ports.push_back({PortDirection::kOut, "p", PortInterface::kShm,
                        rtos::DataType::kInteger, kMaxPortBytes});
  auto bad_size = validate(wide);
  ASSERT_FALSE(bad_size.ok());
  EXPECT_NE(bad_size.error().message.find("byte limit"), std::string::npos);

  EXPECT_TRUE(validate(d).ok());
}

TEST(Descriptor, WrongRootRejected) {
  auto parsed = parse_descriptor("<service name=\"a\"/>");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "xml.unexpected_root");
}

TEST(Descriptor, PortCompatibilityRequiresAllFour) {
  PortSpec out{PortDirection::kOut, "data", PortInterface::kShm,
               rtos::DataType::kByte, 100};
  PortSpec in = out;
  in.direction = PortDirection::kIn;
  EXPECT_TRUE(out.compatible_with(in));
  PortSpec wrong_name = in;
  wrong_name.name = "other";
  EXPECT_FALSE(out.compatible_with(wrong_name));
  PortSpec wrong_iface = in;
  wrong_iface.interface = PortInterface::kMailbox;
  EXPECT_FALSE(out.compatible_with(wrong_iface));
  PortSpec wrong_type = in;
  wrong_type.data_type = rtos::DataType::kInteger;
  EXPECT_FALSE(out.compatible_with(wrong_type));
  PortSpec wrong_size = in;
  wrong_size.size = 99;
  EXPECT_FALSE(out.compatible_with(wrong_size));
}

TEST(Descriptor, WriteRoundTrips) {
  auto parsed = parse_descriptor(kCameraXml);
  ASSERT_TRUE(parsed.ok());
  const std::string serialized = write_descriptor(parsed.value());
  auto reparsed = parse_descriptor(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n"
                             << serialized;
  const auto& a = parsed.value();
  const auto& b = reparsed.value();
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.bincode, b.bincode);
  EXPECT_EQ(a.ports.size(), b.ports.size());
  EXPECT_DOUBLE_EQ(a.periodic->frequency_hz, b.periodic->frequency_hz);
  EXPECT_EQ(a.properties.get_int("prox00"), b.properties.get_int("prox00"));
}

TEST(Descriptor, TargetCpuDefaults) {
  ComponentDescriptor d;
  d.name = "x";
  d.bincode = "y";
  d.type = rtos::TaskType::kAperiodic;
  EXPECT_EQ(d.target_cpu(), 0u);
  d.periodic = PeriodicSpec{100.0, 1, 5};
  EXPECT_EQ(d.target_cpu(), 1u);
}

}  // namespace
}  // namespace drt::drcom
