// Periodic task semantics: releases, latency sampling, overruns, deadline
// misses, suspension, and the load/latency model hooks.
#include <gtest/gtest.h>

#include "rtos/kernel.hpp"
#include "rtos/subtask.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

TaskParams periodic(std::string name, SimDuration period, int priority = 10,
                    CpuId cpu = 0) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kPeriodic;
  params.period = period;
  params.priority = priority;
  params.cpu = cpu;
  return params;
}

/// A standard periodic body: consume `demand` per job until stopped.
TaskBody periodic_body(SimDuration demand) {
  return [demand](TaskContext& ctx) -> TaskCoro {
    while (!ctx.stop_requested()) {
      co_await ctx.consume(demand);
      co_await ctx.wait_next_period();
    }
  };
}

TEST(Periodic, ActivationsMatchElapsedPeriods) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(periodic("tick", milliseconds(1)),
                               periodic_body(microseconds(100)));
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(100));
  const Task* task = kernel.find_task(id.value());
  // First release at t=1ms, then every 1ms: 100 releases in [0, 100ms].
  EXPECT_GE(task->stats.activations, 99u);
  EXPECT_LE(task->stats.activations, 100u);
  EXPECT_EQ(task->stats.deadline_misses, 0u);
  EXPECT_EQ(task->stats.overruns, 0u);
}

TEST(Periodic, ZeroLatencyConfigYieldsZeroSamples) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(periodic("tick", milliseconds(1)),
                               periodic_body(microseconds(100)));
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(50));
  const Task* task = kernel.find_task(id.value());
  ASSERT_GT(task->latency.size(), 0u);
  const auto summary = task->latency.summary();
  EXPECT_DOUBLE_EQ(summary.average, 0.0);
  EXPECT_DOUBLE_EQ(summary.min, 0.0);
  EXPECT_DOUBLE_EQ(summary.max, 0.0);
}

TEST(Periodic, ExplicitStartTimeAlignsFirstRelease) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::vector<SimTime> job_times;
  auto id = kernel.create_task(
      periodic("tick", milliseconds(10)), [&](TaskContext& ctx) -> TaskCoro {
        while (!ctx.stop_requested()) {
          job_times.push_back(ctx.now());
          co_await ctx.wait_next_period();
        }
      });
  ASSERT_TRUE(kernel.start_task(id.value(), milliseconds(5)).ok());
  engine.run_until(milliseconds(46));
  ASSERT_GE(job_times.size(), 4u);
  EXPECT_EQ(job_times[0], milliseconds(5));
  EXPECT_EQ(job_times[1], milliseconds(15));
  EXPECT_EQ(job_times[2], milliseconds(25));
}

TEST(Periodic, OverrunningJobCountsMissesAndContinues) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  // 1ms period but 2.5ms demand: every job overruns.
  auto id = kernel.create_task(periodic("slow", milliseconds(1)),
                               periodic_body(microseconds(2'500)));
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(50));
  const Task* task = kernel.find_task(id.value());
  EXPECT_GT(task->stats.deadline_misses, 0u);
  EXPECT_GT(task->stats.overruns, 0u);
  // Throughput degrades to ~1 job per 2.5ms but the task keeps running.
  EXPECT_GE(task->stats.completions, 15u);
}

TEST(Periodic, SuspendSkipsReleases) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(periodic("tick", milliseconds(1)),
                               periodic_body(microseconds(50)));
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(10));
  const auto activations_before =
      kernel.find_task(id.value())->stats.activations;
  ASSERT_TRUE(kernel.suspend_task(id.value()).ok());
  engine.run_until(milliseconds(30));
  EXPECT_EQ(kernel.find_task(id.value())->stats.activations,
            activations_before);
  ASSERT_TRUE(kernel.resume_task(id.value()).ok());
  engine.run_until(milliseconds(50));
  const Task* task = kernel.find_task(id.value());
  EXPECT_GT(task->stats.activations, activations_before);
  // Releases during the 20ms suspension collapse: at most the one job that
  // was interrupted mid-flight resumes as an immediate overrun.
  EXPECT_LE(task->stats.overruns, 1u);
}

TEST(Periodic, TwoTasksSharePriorityWithInterference) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  // High-priority 1kHz task; low-priority 100Hz task with 3ms jobs on the
  // same CPU. The low task is preempted by every high release.
  auto high = kernel.create_task(periodic("high", milliseconds(1), 1),
                                 periodic_body(microseconds(200)));
  auto low = kernel.create_task(periodic("low", milliseconds(10), 5),
                                periodic_body(milliseconds(3)));
  ASSERT_TRUE(kernel.start_task(high.value()).ok());
  ASSERT_TRUE(kernel.start_task(low.value()).ok());
  engine.run_until(milliseconds(200));
  const Task* high_task = kernel.find_task(high.value());
  const Task* low_task = kernel.find_task(low.value());
  // High never misses (its 200us job always fits).
  EXPECT_EQ(high_task->stats.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(high_task->latency.summary().max, 0.0);
  // Low gets preempted but still completes all jobs: 3ms of demand + ~0.6ms
  // of interference per period fits in 10ms.
  EXPECT_GT(low_task->stats.preemptions, 0u);
  EXPECT_EQ(low_task->stats.deadline_misses, 0u);
}

TEST(Periodic, SkipMissedPeriodsRealignsBaseline) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::vector<SimTime> job_times;
  auto id = kernel.create_task(
      periodic("tick", milliseconds(1)), [&](TaskContext& ctx) -> TaskCoro {
        // First job sleeps way past several releases, then realigns.
        job_times.push_back(ctx.now());
        co_await ctx.sleep_for(milliseconds(5));
        (void)ctx.skip_missed_periods();
        co_await ctx.wait_next_period();
        job_times.push_back(ctx.now());
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(20));
  ASSERT_EQ(job_times.size(), 2u);
  EXPECT_EQ(job_times[0], milliseconds(1));
  // Slept until 6ms; realigned baseline means next release at 7ms, with no
  // overrun burst in between.
  EXPECT_EQ(job_times[1], milliseconds(7));
  EXPECT_EQ(kernel.find_task(id.value())->stats.overruns, 0u);
}

TEST(Periodic, SubTaskNestingAwaitsKernelOps) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::vector<SimTime> marks;
  auto nested = [](TaskContext& ctx, std::vector<SimTime>& out) -> SubTask<> {
    co_await ctx.consume(microseconds(100));
    out.push_back(ctx.now());
    co_await ctx.consume(microseconds(100));
    out.push_back(ctx.now());
  };
  auto id = kernel.create_task(
      periodic("nest", milliseconds(1)), [&](TaskContext& ctx) -> TaskCoro {
        co_await nested(ctx, marks);
        co_await ctx.wait_next_period();
        co_await nested(ctx, marks);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(10));
  ASSERT_EQ(marks.size(), 4u);
  EXPECT_EQ(marks[0], milliseconds(1) + microseconds(100));
  EXPECT_EQ(marks[1], milliseconds(1) + microseconds(200));
  EXPECT_EQ(marks[2], milliseconds(2) + microseconds(100));
  EXPECT_EQ(marks[3], milliseconds(2) + microseconds(200));
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
}

TEST(Periodic, SubTaskReturnsValue) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  int result = 0;
  auto compute = [](TaskContext& ctx) -> SubTask<int> {
    co_await ctx.consume(microseconds(10));
    co_return 42;
  };
  auto id = kernel.create_task(
      TaskParams{.name = "calc", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro { result = co_await compute(ctx); });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(result, 42);
}

// -------- parameterized sweep: utilization vs deadline misses -------------

struct UtilizationCase {
  SimDuration period;
  SimDuration demand;
  bool expect_misses;
};

class PeriodicUtilization : public ::testing::TestWithParam<UtilizationCase> {};

TEST_P(PeriodicUtilization, MissesIffOverloaded) {
  const auto param = GetParam();
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(periodic("sweep", param.period),
                               periodic_body(param.demand));
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(500));
  const Task* task = kernel.find_task(id.value());
  if (param.expect_misses) {
    EXPECT_GT(task->stats.deadline_misses, 0u);
  } else {
    EXPECT_EQ(task->stats.deadline_misses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeriodicUtilization,
    ::testing::Values(
        UtilizationCase{milliseconds(1), microseconds(100), false},   // 10%
        UtilizationCase{milliseconds(1), microseconds(500), false},   // 50%
        UtilizationCase{milliseconds(1), microseconds(990), false},   // 99%
        UtilizationCase{milliseconds(1), microseconds(1'100), true},  // 110%
        UtilizationCase{milliseconds(2), microseconds(3'000), true},  // 150%
        UtilizationCase{milliseconds(10), milliseconds(9), false}));  // 90%

// -------- parameterized sweep: N equal tasks round-robin fairness ---------

class RoundRobinFairness : public ::testing::TestWithParam<int> {};

TEST_P(RoundRobinFairness, EqualTasksShareCpuEvenly) {
  const int n = GetParam();
  SimEngine engine;
  auto config = quiet_config();
  config.default_rr_quantum = milliseconds(1);
  RtKernel kernel(engine, config);
  std::vector<TaskId> ids;
  for (int i = 0; i < n; ++i) {
    auto id = kernel.create_task(
        TaskParams{.name = "t" + std::to_string(i),
                   .type = TaskType::kAperiodic,
                   .priority = 5},
        [](TaskContext& ctx) -> TaskCoro {
          co_await ctx.consume(milliseconds(10));
        });
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
    ASSERT_TRUE(kernel.start_task(id.value()).ok());
  }
  // Run half the total demand: every task should have ~equal service.
  engine.run_until(milliseconds(5) * n);
  SimDuration min_served = kSimTimeNever;
  SimDuration max_served = 0;
  for (TaskId id : ids) {
    const auto served = kernel.find_task(id)->stats.cpu_time;
    min_served = std::min(min_served, served);
    max_served = std::max(max_served, served);
  }
  // Fairness within one quantum.
  EXPECT_LE(max_served - min_served, milliseconds(1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundRobinFairness,
                         ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace drt::rtos
