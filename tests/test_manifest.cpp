// Bundle manifest parsing: headers, package clauses, the DRT-Components
// descriptor header.
#include <gtest/gtest.h>

#include "osgi/manifest.hpp"

namespace drt::osgi {
namespace {

TEST(Manifest, MinimalManifest) {
  auto manifest = Manifest::parse("Bundle-SymbolicName: org.example.app\n");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().symbolic_name(), "org.example.app");
  EXPECT_EQ(manifest.value().version(), Version(0, 0, 0));
}

TEST(Manifest, RequiresSymbolicName) {
  auto manifest = Manifest::parse("Bundle-Name: whatever\n");
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.error().code, "osgi.bad_manifest");
}

TEST(Manifest, FullHeaders) {
  auto manifest = Manifest::parse(
      "Bundle-SymbolicName: com.acme.rt;singleton:=true\n"
      "Bundle-Version: 1.2.3\n"
      "Bundle-Name: Acme RT Components\n"
      "Import-Package: org.osgi.framework;version=\"[1.3,2.0)\", "
      "com.acme.util;resolution:=optional\n"
      "Export-Package: com.acme.rt.api;version=\"1.2.0\"\n"
      "DRT-Components: DRT-INF/camera.xml, DRT-INF/display.xml\n");
  ASSERT_TRUE(manifest.ok()) << manifest.error().message;
  const Manifest& m = manifest.value();
  EXPECT_EQ(m.symbolic_name(), "com.acme.rt");  // directives stripped
  EXPECT_EQ(m.version(), Version(1, 2, 3));
  EXPECT_EQ(m.name(), "Acme RT Components");

  ASSERT_EQ(m.imports().size(), 2u);
  EXPECT_EQ(m.imports()[0].package, "org.osgi.framework");
  EXPECT_TRUE(m.imports()[0].version_range.includes(Version(1, 5, 0)));
  EXPECT_FALSE(m.imports()[0].version_range.includes(Version(2, 0, 0)));
  EXPECT_FALSE(m.imports()[0].optional);
  EXPECT_TRUE(m.imports()[1].optional);

  ASSERT_EQ(m.exports().size(), 1u);
  EXPECT_EQ(m.exports()[0].package, "com.acme.rt.api");
  EXPECT_EQ(m.exports()[0].version, Version(1, 2, 0));

  ASSERT_EQ(m.component_resources().size(), 2u);
  EXPECT_EQ(m.component_resources()[0], "DRT-INF/camera.xml");
  EXPECT_EQ(m.component_resources()[1], "DRT-INF/display.xml");
}

TEST(Manifest, QuotedVersionRangeCommaDoesNotSplitClauses) {
  auto manifest = Manifest::parse(
      "Bundle-SymbolicName: x\n"
      "Import-Package: a;version=\"[1.0,2.0)\", b;version=\"[3.0,4.0]\"\n");
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest.value().imports().size(), 2u);
  EXPECT_EQ(manifest.value().imports()[0].package, "a");
  EXPECT_EQ(manifest.value().imports()[1].package, "b");
}

TEST(Manifest, HeaderLookupIsCaseInsensitive) {
  auto manifest = Manifest::parse(
      "Bundle-SymbolicName: x\n"
      "X-Custom-Header: hello\n");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().header("x-custom-header"), "hello");
  EXPECT_EQ(manifest.value().header("X-CUSTOM-HEADER"), "hello");
  EXPECT_EQ(manifest.value().header("absent"), "");
}

TEST(Manifest, InvalidVersionRejected) {
  auto manifest = Manifest::parse(
      "Bundle-SymbolicName: x\nBundle-Version: not.a.version\n");
  EXPECT_FALSE(manifest.ok());
}

TEST(Manifest, BuilderApi) {
  Manifest manifest;
  manifest.set_symbolic_name("prog.bundle")
      .set_version(Version(2, 0, 0))
      .add_import({"pkg.a", VersionRange{}, false})
      .add_export({"pkg.b", Version(1, 0, 0)})
      .add_component_resource("DRT-INF/c.xml");
  EXPECT_EQ(manifest.symbolic_name(), "prog.bundle");
  EXPECT_EQ(manifest.imports().size(), 1u);
  EXPECT_EQ(manifest.exports().size(), 1u);
  EXPECT_EQ(manifest.component_resources().size(), 1u);
}

}  // namespace
}  // namespace drt::osgi
