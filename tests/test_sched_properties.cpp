// Property-based scheduler validation: randomized task sets checked against
// scheduling-theory invariants, swept over seeds with TEST_P.
#include <gtest/gtest.h>

#include <numeric>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

struct GeneratedTask {
  SimDuration period;
  SimDuration demand;
  int priority;
  TaskId id = 0;
};

/// Generates a random task set with rate-monotonic priorities and total
/// utilization close to (but below) `target_util`.
std::vector<GeneratedTask> generate_task_set(Rng& rng, std::size_t count,
                                             double target_util) {
  // Harmonic-friendly period menu (ns).
  const SimDuration menu[] = {milliseconds(1), milliseconds(2),
                              milliseconds(4), milliseconds(5),
                              milliseconds(10), milliseconds(20)};
  std::vector<GeneratedTask> tasks(count);
  // Random utilization split (normalized).
  std::vector<double> shares(count);
  double total = 0.0;
  for (auto& share : shares) {
    share = 0.1 + rng.next_double();
    total += share;
  }
  for (std::size_t i = 0; i < count; ++i) {
    tasks[i].period = menu[rng.uniform(0, 5)];
    const double util = target_util * shares[i] / total;
    tasks[i].demand = std::max<SimDuration>(
        1'000, static_cast<SimDuration>(util * static_cast<double>(
                                                   tasks[i].period)));
    // Rate-monotonic: priority index proportional to period.
    tasks[i].priority = static_cast<int>(tasks[i].period / microseconds(100));
  }
  return tasks;
}

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, FeasibleRmSetNeverMissesAndConservesCpu) {
  Rng rng(GetParam());
  SimEngine engine;
  RtKernel kernel(engine, quiet_config(1));
  auto tasks = generate_task_set(rng, 5, 0.7);
  double expected_util = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& task = tasks[i];
    expected_util += static_cast<double>(task.demand) /
                     static_cast<double>(task.period);
    TaskParams params;
    params.name = "t" + std::to_string(i);
    params.type = TaskType::kPeriodic;
    params.period = task.period;
    params.priority = task.priority;
    const SimDuration demand = task.demand;
    auto id = kernel.create_task(
        params, [demand](TaskContext& ctx) -> TaskCoro {
          while (!ctx.stop_requested()) {
            co_await ctx.consume(demand);
            co_await ctx.wait_next_period();
          }
        });
    ASSERT_TRUE(id.ok());
    task.id = id.value();
    ASSERT_TRUE(kernel.start_task(task.id).ok());
  }

  const SimTime horizon = seconds(5);
  engine.run_until(horizon);

  // Invariant 1: a feasible RM set (U = 0.7 with RM priorities on harmonic-
  // friendly periods) misses no deadlines under zero-latency scheduling.
  for (const auto& task : tasks) {
    EXPECT_EQ(kernel.find_task(task.id)->stats.deadline_misses, 0u)
        << "task " << task.id;
  }

  // Invariant 2: CPU-time conservation — each task receives exactly
  // activations * demand, and the CPU's busy time is their sum.
  SimDuration total_served = 0;
  for (const auto& task : tasks) {
    const Task* tcb = kernel.find_task(task.id);
    // The task may be mid-job at the horizon; allow one demand of slack.
    const auto expected = static_cast<SimDuration>(tcb->stats.completions) *
                          task.demand;
    EXPECT_GE(tcb->stats.cpu_time, expected);
    EXPECT_LE(tcb->stats.cpu_time, expected + task.demand);
    total_served += tcb->stats.cpu_time;
  }
  EXPECT_EQ(kernel.cpu_busy_time(0), total_served);
  // Utilization matches the generated target within job-boundary slack.
  const double measured_util = static_cast<double>(total_served) /
                               static_cast<double>(horizon);
  EXPECT_NEAR(measured_util, expected_util, 0.02);

  // Invariant 3: every task made progress at roughly its own rate.
  for (const auto& task : tasks) {
    const Task* tcb = kernel.find_task(task.id);
    const auto expected_jobs =
        static_cast<std::uint64_t>(horizon / task.period);
    EXPECT_GE(tcb->stats.activations + 1, expected_jobs);
    EXPECT_LE(tcb->stats.activations, expected_jobs + 1);
  }
}

TEST_P(SchedulerProperty, OverloadedSetStarvesOnlyLowestPriority) {
  Rng rng(GetParam() ^ 0xBEEF);
  SimEngine engine;
  RtKernel kernel(engine, quiet_config(1));
  // Two tasks: high-priority at 80% utilization, low-priority demanding 50%
  // — together infeasible. RM/FP guarantees the high one stays clean.
  TaskParams high;
  high.name = "high";
  high.type = TaskType::kPeriodic;
  high.period = milliseconds(1 + static_cast<SimDuration>(rng.uniform(0, 3)));
  high.priority = 1;
  const SimDuration high_demand =
      static_cast<SimDuration>(0.8 * static_cast<double>(high.period));
  TaskParams low;
  low.name = "low";
  low.type = TaskType::kPeriodic;
  low.period = high.period * 4;
  low.priority = 9;
  const SimDuration low_demand =
      static_cast<SimDuration>(0.5 * static_cast<double>(low.period));
  auto high_id = kernel.create_task(
      high, [high_demand](TaskContext& ctx) -> TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(high_demand);
          co_await ctx.wait_next_period();
        }
      });
  auto low_id = kernel.create_task(
      low, [low_demand](TaskContext& ctx) -> TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(low_demand);
          co_await ctx.wait_next_period();
        }
      });
  ASSERT_TRUE(kernel.start_task(high_id.value()).ok());
  ASSERT_TRUE(kernel.start_task(low_id.value()).ok());
  engine.run_until(seconds(2));
  EXPECT_EQ(kernel.find_task(high_id.value())->stats.deadline_misses, 0u);
  EXPECT_GT(kernel.find_task(low_id.value())->stats.deadline_misses, 0u);
  // The low task still gets the leftover ~20%: no total starvation under
  // the overrun-collapse policy.
  EXPECT_GT(kernel.find_task(low_id.value())->stats.completions, 0u);
}

TEST_P(SchedulerProperty, DeterministicAcrossIdenticalRuns) {
  auto run_once = [&](std::uint64_t seed) {
    Rng rng(seed);
    SimEngine engine;
    auto config = quiet_config(2);
    config.latency = {};  // full stochastic latency model
    config.load = light_load();
    config.seed = seed;
    RtKernel kernel(engine, config);
    auto tasks = generate_task_set(rng, 4, 0.5);
    std::vector<TaskId> ids;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      TaskParams params;
      params.name = "t" + std::to_string(i);
      params.type = TaskType::kPeriodic;
      params.period = tasks[i].period;
      params.priority = tasks[i].priority;
      params.cpu = static_cast<CpuId>(i % 2);
      const SimDuration demand = tasks[i].demand;
      auto id = kernel.create_task(
          params, [demand](TaskContext& ctx) -> TaskCoro {
            while (!ctx.stop_requested()) {
              co_await ctx.consume(demand);
              co_await ctx.wait_next_period();
            }
          });
      ids.push_back(id.value());
      (void)kernel.start_task(id.value());
    }
    engine.run_until(seconds(1));
    std::vector<double> fingerprint;
    for (TaskId id : ids) {
      const Task* task = kernel.find_task(id);
      fingerprint.push_back(static_cast<double>(task->stats.activations));
      fingerprint.push_back(task->latency.summary().average);
      fingerprint.push_back(task->latency.summary().max);
    }
    return fingerprint;
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace drt::rtos
