// Observability layer: EventRing semantics, MetricsRegistry handles and
// snapshots, kernel/IPC instrumentation consistency (including under fault
// injection), the metrics-disabled zero-mutation guard, Drcr::observe(), and
// byte-identical golden files for the three exporters.
//
// Golden files live in tests/golden/ (compiled in via DRT_GOLDEN_DIR).
// Regenerate after an intentional format change with:
//   DRT_UPDATE_GOLDEN=1 ./build/tests/test_obs
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "drcom/drcr.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "rtos/fault.hpp"
#include "rtos/kernel.hpp"
#include "test_helpers.hpp"

namespace drt {
namespace {

using rtos::testing::quiet_config;

// ------------------------------------------------------------- EventRing --

TEST(EventRing, RoundsCapacityUpToPowerOfTwo) {
  obs::EventRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(obs::EventRing<int>(0).capacity(), 1u);
  EXPECT_EQ(obs::EventRing<int>(16).capacity(), 16u);
}

TEST(EventRing, OverwritesOldestAndCountsLoss) {
  obs::EventRing<int> ring(4);
  for (int i = 1; i <= 6; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);  // 1 and 2 were evicted
  EXPECT_EQ(ring.at(0), 3);
  EXPECT_EQ(ring.at(3), 6);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{3, 4, 5, 6}));
}

TEST(EventRing, ClearDropsWindowButKeepsTotals) {
  obs::EventRing<int> ring(4);
  for (int i = 0; i < 6; ++i) ring.push(i);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total_pushed(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);  // overwrite loss only, clear is on purpose
  ring.push(42);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.at(0), 42);
  EXPECT_EQ(ring.total_pushed(), 7u);
}

// ------------------------------------------------------- MetricsRegistry --

TEST(MetricsRegistry, DisabledHandlesAreNoOps) {
  obs::MetricsRegistry registry;  // disabled by default
  obs::Counter* counter = registry.counter("c", "help");
  obs::Gauge* gauge = registry.gauge("g");
  obs::Histogram* histogram = registry.histogram("h", "", {1.0, 2.0});
  counter->add(5);
  gauge->set(3.5);
  histogram->observe(1.5);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);
}

TEST(MetricsRegistry, EnabledHandlesCount) {
  obs::MetricsRegistry registry;
  registry.enable();
  obs::Counter* counter = registry.counter("c");
  counter->add();
  counter->add(3);
  EXPECT_EQ(counter->value(), 4u);
  // Get-or-create returns the same handle.
  EXPECT_EQ(registry.counter("c"), counter);
}

TEST(MetricsRegistry, HistogramBucketsIncludeNegativeBoundsAndInf) {
  obs::MetricsRegistry registry;
  registry.enable();
  obs::Histogram* h = registry.histogram("lat", "", {-10.0, 0.0, 10.0});
  h->observe(-20.0);  // <= -10    -> bucket 0
  h->observe(-10.0);  // boundary  -> bucket 0 (le semantics)
  h->observe(0.0);    // boundary  -> bucket 1
  h->observe(5.0);    // <= 10     -> bucket 2
  h->observe(99.0);   // above all -> +Inf bucket
  EXPECT_EQ(h->bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 74.0);
}

TEST(MetricsRegistry, CallbackGaugesEvaluateAtSnapshotOnly) {
  obs::MetricsRegistry registry;
  registry.enable();
  int calls = 0;
  registry.gauge_callback("cb", "", [&calls] {
    ++calls;
    return 7.0;
  });
  EXPECT_EQ(calls, 0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "cb");
  EXPECT_EQ(snap.gauges[0].value, 7.0);
  registry.remove_gauge_callback("cb");
  EXPECT_TRUE(registry.snapshot().gauges.empty());
}

TEST(MetricsRegistry, SnapshotIsNameOrderedAcrossStoredAndCallbackGauges) {
  obs::MetricsRegistry registry;
  registry.enable();
  registry.gauge("b.stored");
  registry.gauge_callback("a.computed", "", [] { return 1.0; });
  registry.gauge_callback("c.computed", "", [] { return 2.0; });
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 3u);
  EXPECT_EQ(snap.gauges[0].name, "a.computed");
  EXPECT_EQ(snap.gauges[1].name, "b.stored");
  EXPECT_EQ(snap.gauges[2].name, "c.computed");
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  obs::MetricsRegistry registry;
  registry.enable();
  obs::Counter* counter = registry.counter("c");
  counter->add(9);
  registry.reset();
  EXPECT_EQ(counter->value(), 0u);
  counter->add();
  EXPECT_EQ(counter->value(), 1u);
}

// --------------------------------------------- kernel instrumentation ----

rtos::TaskParams periodic(std::string name, SimDuration period,
                          int priority = 10, CpuId cpu = 0) {
  rtos::TaskParams params;
  params.name = std::move(name);
  params.type = rtos::TaskType::kPeriodic;
  params.period = period;
  params.priority = priority;
  params.cpu = cpu;
  return params;
}

TEST(KernelMetrics, CountersMirrorTaskStats) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.metrics().enable();
  auto id = kernel.create_task(
      periodic("tick", milliseconds(1)),
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(microseconds(100));
          co_await ctx.wait_next_period();
        }
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(20));

  const rtos::Task* task = kernel.find_task(id.value());
  const auto value = [&kernel](const char* name) {
    return kernel.metrics().counter(name)->value();
  };
  EXPECT_EQ(value("rtos.releases"), task->stats.activations);
  EXPECT_EQ(value("rtos.dispatches"), task->stats.dispatches);
  EXPECT_EQ(value("rtos.completions"), task->stats.completions);
  EXPECT_EQ(value("rtos.deadline_misses"), task->stats.deadline_misses);
  // Every completed job contributed one release-latency observation.
  const auto snap = kernel.metrics().snapshot();
  for (const auto& histogram : snap.histograms) {
    if (histogram.name == "rtos.release_latency_ns") {
      EXPECT_EQ(histogram.count, task->stats.activations);
    }
  }
}

TEST(KernelMetrics, MailboxAggregatesEqualPerMailboxCounters) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.metrics().enable();
  auto mailbox = kernel.mailbox_create("mbx", 8);
  ASSERT_TRUE(mailbox.ok());
  int received = 0;
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "rx", .type = rtos::TaskType::kAperiodic},
      [&](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        for (int i = 0; i < 3; ++i) {
          auto message = co_await ctx.receive(*mailbox.value());
          if (message.has_value()) ++received;
        }
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  for (int i = 0; i < 5; ++i) {
    kernel.mailbox_send(*mailbox.value(), rtos::message_from_string("m"));
    engine.run_until(milliseconds(2 + i));
  }
  EXPECT_EQ(received, 3);
  const rtos::Mailbox* mbx = mailbox.value();
  const auto value = [&kernel](const char* name) {
    return kernel.metrics().counter(name)->value();
  };
  EXPECT_EQ(value("ipc.mailbox_sent"), mbx->sent_count());
  EXPECT_EQ(value("ipc.mailbox_dropped"), mbx->dropped_count());
  EXPECT_EQ(value("ipc.mailbox_handoff"), mbx->handoff_count());
  EXPECT_EQ(value("ipc.mailbox_received"), mbx->received_count());

  // Deleting the mailbox moves its counters into the retired remainder, so
  // the aggregate invariant survives object churn.
  ASSERT_TRUE(kernel.mailbox_delete("mbx").ok());
  const auto& retired = kernel.retired_mailbox_counters();
  EXPECT_EQ(value("ipc.mailbox_sent"), retired.sent);
  EXPECT_EQ(value("ipc.mailbox_received"), retired.received);
}

TEST(KernelMetrics, FaultInjectionCountsDropsAndDuplicatesExactlyOnce) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.metrics().enable();
  rtos::FaultPlan faults;
  kernel.set_fault_plan(&faults);
  faults.arm({rtos::FaultKind::kDropMessage, "mbx", 2, 0});
  faults.arm({rtos::FaultKind::kDuplicateMessage, "mbx", 4, 0});
  auto mailbox = kernel.mailbox_create("mbx", 8);
  ASSERT_TRUE(mailbox.ok());
  for (int i = 0; i < 5; ++i) {
    // The dropped send still reports success: the sender cannot tell.
    EXPECT_TRUE(
        kernel.mailbox_send(*mailbox.value(), rtos::message_from_string("m")));
  }
  const rtos::Mailbox* mbx = mailbox.value();
  // 5 sends: #2 dropped by fault (counted once, not queued), #4 delivered
  // twice. Queue holds 1,3,4,4',5; per-mailbox sent counts deliveries.
  EXPECT_EQ(mbx->size(), 5u);
  EXPECT_EQ(mbx->sent_count(), 5u);
  EXPECT_EQ(mbx->fault_dropped_count(), 1u);
  EXPECT_EQ(mbx->fault_duplicated_count(), 1u);
  // Registry aggregates agree exactly — the regression this test pins: both
  // sides are incremented at the same sites, never twice, never zero times.
  const auto value = [&kernel](const char* name) {
    return kernel.metrics().counter(name)->value();
  };
  EXPECT_EQ(value("ipc.mailbox_sent"), mbx->sent_count());
  EXPECT_EQ(value("ipc.mailbox_dropped"), mbx->dropped_count());
  EXPECT_EQ(value("ipc.mailbox_fault_dropped"), mbx->fault_dropped_count());
  EXPECT_EQ(value("ipc.mailbox_fault_duplicated"),
            mbx->fault_duplicated_count());
}

TEST(KernelMetrics, PlantedMiscountBugStaysPerMailboxOnly) {
  // kMiscountMessage rolls back the per-mailbox sent counter — a planted
  // accounting bug the fuzzer's oracle must catch. The registry aggregate is
  // deliberately NOT rolled back, so the two sides disagreeing is the
  // second, independent detector (oracle invariant 7).
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.metrics().enable();
  rtos::FaultPlan faults;
  kernel.set_fault_plan(&faults);
  faults.arm({rtos::FaultKind::kMiscountMessage, "mbx", 1, 0});
  auto mailbox = kernel.mailbox_create("mbx", 8);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_TRUE(
      kernel.mailbox_send(*mailbox.value(), rtos::message_from_string("m")));
  EXPECT_EQ(mailbox.value()->sent_count(), 0u);  // the planted lie
  EXPECT_EQ(kernel.metrics().counter("ipc.mailbox_sent")->value(), 1u);
}

TEST(KernelMetrics, DisabledRegistryMutatesNothing) {
  // The overhead guard's structural half: with metrics disabled (the
  // default), a full scenario leaves every counter, gauge and histogram at
  // zero, and the virtual-time outcome is identical to an enabled run.
  const auto run = [](bool enabled, std::uint64_t* dispatches) {
    rtos::SimEngine engine;
    rtos::RtKernel kernel(engine, quiet_config());
    if (enabled) kernel.metrics().enable();
    auto id = kernel.create_task(
        periodic("tick", milliseconds(1)),
        [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
          while (!ctx.stop_requested()) {
            co_await ctx.consume(microseconds(50));
            co_await ctx.wait_next_period();
          }
        });
    EXPECT_TRUE(kernel.start_task(id.value()).ok());
    engine.run_until(milliseconds(10));
    *dispatches = kernel.find_task(id.value())->stats.dispatches;
    return kernel.metrics().snapshot();
  };
  std::uint64_t disabled_dispatches = 0;
  std::uint64_t enabled_dispatches = 0;
  const auto disabled = run(false, &disabled_dispatches);
  const auto enabled = run(true, &enabled_dispatches);
  // Identical virtual-time behaviour: counting must not perturb the sim.
  EXPECT_EQ(disabled_dispatches, enabled_dispatches);
  for (const auto& counter : disabled.counters) {
    EXPECT_EQ(counter.value, 0u) << counter.name;
  }
  for (const auto& histogram : disabled.histograms) {
    EXPECT_EQ(histogram.count, 0u) << histogram.name;
  }
  // The enabled run did count.
  bool saw_dispatches = false;
  for (const auto& counter : enabled.counters) {
    if (counter.name == "rtos.dispatches") {
      saw_dispatches = counter.value > 0;
    }
  }
  EXPECT_TRUE(saw_dispatches);
}

// ------------------------------------------------------- Drcr::observe() --

class Worker : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      co_await job.next_cycle();
    }
  }
};

drcom::ComponentDescriptor component(std::string name, double usage = 0.1) {
  drcom::ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "test.Worker";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = drcom::PeriodicSpec{1000.0, 0, 5};
  return d;
}

struct ObsDrcrFixture : public ::testing::Test {
  ObsDrcrFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    kernel.metrics().enable();
    drcr.factories().register_factory(
        "test.Worker", [] { return std::make_unique<Worker>(); });
    drcr.factories().register_factory(
        "test.Throw", []() -> std::unique_ptr<drcom::RtComponent> {
          throw std::runtime_error("boom");
        });
  }

  std::uint64_t counter(const char* name) {
    return kernel.metrics().counter(name)->value();
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  drcom::Drcr drcr;
};

TEST_F(ObsDrcrFixture, ObserveBundlesMetricsTraceAndTime) {
  ASSERT_TRUE(drcr.register_component(component("solo")).ok());
  engine.run_until(milliseconds(5));
  const obs::ObsSnapshot snap = drcr.observe();
  EXPECT_EQ(snap.source, "drcr");
  EXPECT_EQ(snap.now, kernel.now());
  EXPECT_EQ(snap.trace, &kernel.trace());
  bool saw_activations = false;
  for (const auto& counter : snap.metrics.counters) {
    if (counter.name == "drcom.activations") {
      saw_activations = counter.value == 1;
    }
  }
  EXPECT_TRUE(saw_activations);
  bool saw_utilization = false;
  for (const auto& gauge : snap.metrics.gauges) {
    if (gauge.name == "drcom.admitted_utilization.cpu0") {
      saw_utilization = gauge.value > 0.0;
    }
  }
  EXPECT_TRUE(saw_utilization);
}

TEST_F(ObsDrcrFixture, LifecycleCountersAndServiceLookupsCount) {
  ASSERT_TRUE(drcr.register_component(component("a")).ok());
  ASSERT_TRUE(drcr.register_component(component("b")).ok());
  ASSERT_TRUE(drcr.unregister_component("a").ok());
  EXPECT_EQ(counter("drcom.registrations"), 2u);
  EXPECT_EQ(counter("drcom.activations"), 2u);
  EXPECT_EQ(counter("drcom.deactivations"), 1u);
  EXPECT_EQ(counter("drcom.unregistrations"), 1u);
  // The DRCR publishes/looks up management services through the registry,
  // which counts while wired to the kernel's metrics.
  EXPECT_GT(counter("osgi.service_lookups"), 0u);
}

TEST_F(ObsDrcrFixture, ErrorCodesReplaceStringMatching) {
  ASSERT_TRUE(drcr.register_component(component("dup")).ok());
  const auto duplicate = drcr.register_component(component("dup"));
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().ec, ErrorCode::kAlreadyExists);

  const auto missing = drcr.unregister_component("ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().ec, ErrorCode::kNotFound);

  // Admission rejection: the budget holds 'big', not 'big' + 'more'.
  ASSERT_TRUE(drcr.register_component(component("big", 0.6)).ok());
  ASSERT_TRUE(drcr.register_component(component("more", 0.5)).ok());
  EXPECT_EQ(drcr.state_of("more").value(),
            drcom::ComponentState::kUnsatisfied);
  EXPECT_EQ(drcr.component_health("more")->last_error,
            ErrorCode::kAdmissionRejected);

  // Factory failure.
  auto bomb = component("bomb");
  bomb.bincode = "test.Throw";
  ASSERT_TRUE(drcr.register_component(std::move(bomb)).ok());
  EXPECT_EQ(drcr.component_health("bomb")->last_error,
            ErrorCode::kFactoryFailed);

  // Invalid descriptors carry the parse-level code.
  const auto parsed = drcom::parse_descriptor("<drt:component name=\"\"/>");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().ec, ErrorCode::kInvalidDescriptor);
}

TEST_F(ObsDrcrFixture, EventRingRetainsBoundedWindowWithCodes) {
  ASSERT_TRUE(drcr.register_component(component("dup")).ok());
  ASSERT_TRUE(drcr.register_component(component("big", 0.95)).ok());
  const auto events = drcr.recent_events();
  ASSERT_GE(events.size(), 3u);  // registered, activated, registered, rejected
  bool saw_rejection_code = false;
  for (const auto& event : events) {
    if (event.type == drcom::DrcrEventType::kRejected) {
      saw_rejection_code = event.code == ErrorCode::kAdmissionRejected;
    }
  }
  EXPECT_TRUE(saw_rejection_code);
  const std::uint64_t pushed = drcr.event_ring().total_pushed();
  drcr.clear_recent_events();
  EXPECT_TRUE(drcr.recent_events().empty());
  EXPECT_EQ(drcr.event_ring().total_pushed(), pushed);
}

// ------------------------------------------------------------- exporters --

/// Deterministic table1-style scenario: two periodic tasks (camera on cpu 0
/// feeding a mailbox, control on cpu 1) plus an aperiodic logger draining
/// the mailbox on cpu 1. Every latency source is zeroed, so reruns are
/// byte-identical.
obs::ObsSnapshot golden_scenario(rtos::SimEngine& engine,
                                 rtos::RtKernel& kernel) {
  kernel.trace().enable();
  kernel.metrics().enable();
  auto mailbox = kernel.mailbox_create("sensor.data", 4);
  EXPECT_TRUE(mailbox.ok());

  auto camera = kernel.create_task(
      periodic("camera", milliseconds(1), 10, 0),
      [&kernel, &mailbox](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(microseconds(100));
          kernel.mailbox_send(*mailbox.value(),
                              rtos::message_from_string("frame"));
          co_await ctx.wait_next_period();
        }
      });
  auto control = kernel.create_task(
      periodic("control", milliseconds(2), 5, 1),
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(microseconds(200));
          co_await ctx.wait_next_period();
        }
      });
  auto logger = kernel.create_task(
      rtos::TaskParams{
          .name = "logger", .type = rtos::TaskType::kAperiodic, .cpu = 1},
      [&mailbox](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        for (int i = 0; i < 4; ++i) {
          co_await ctx.receive(*mailbox.value());
        }
      });
  EXPECT_TRUE(kernel.start_task(camera.value()).ok());
  EXPECT_TRUE(kernel.start_task(control.value()).ok());
  EXPECT_TRUE(kernel.start_task(logger.value()).ok());
  engine.run_until(milliseconds(5));

  // The pool gauges read a process-global singleton; trim it so the
  // snapshot does not depend on what earlier tests allocated.
  rtos::MessagePool::instance().trim();

  obs::ObsSnapshot snap;
  snap.metrics = kernel.metrics().snapshot();
  snap.trace = &kernel.trace();
  snap.now = kernel.now();
  snap.source = "golden";
  return snap;
}

void check_golden(const std::string& filename, const std::string& rendered) {
  const std::string path = std::string(DRT_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("DRT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with DRT_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << filename << " drifted; if intentional, regenerate with "
         "DRT_UPDATE_GOLDEN=1";
}

TEST(Exporters, GoldenFilesAreByteIdentical) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  const obs::ObsSnapshot snap = golden_scenario(engine, kernel);
  check_golden("obs_snapshot.prom", obs::PrometheusExporter{}.render(snap));
  check_golden("obs_snapshot.json", obs::JsonExporter{}.render(snap));
  check_golden("obs_snapshot.trace.json",
               obs::ChromeTraceExporter{}.render(snap));
}

TEST(Exporters, RenderingIsDeterministicAcrossRuns) {
  const auto render_all = [] {
    rtos::SimEngine engine;
    rtos::RtKernel kernel(engine, quiet_config());
    const obs::ObsSnapshot snap = golden_scenario(engine, kernel);
    return obs::PrometheusExporter{}.render(snap) +
           obs::JsonExporter{}.render(snap) +
           obs::ChromeTraceExporter{}.render(snap);
  };
  EXPECT_EQ(render_all(), render_all());
}

TEST(Exporters, ChromeTraceIsWellFormedJson) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  const obs::ObsSnapshot snap = golden_scenario(engine, kernel);
  const std::string rendered = obs::ChromeTraceExporter{}.render(snap);
  // Structural smoke checks (a JSON parser is deliberately not a test
  // dependency): top-level object, the two required keys, balanced braces.
  EXPECT_EQ(rendered.front(), '{');
  EXPECT_NE(rendered.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(rendered.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(rendered.find("\"ph\":\"X\""), std::string::npos);  // slices
  EXPECT_NE(rendered.find("\"ph\":\"M\""), std::string::npos);  // metadata
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    const char c = rendered[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Exporters, WriteFileRoundTrips) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.metrics().enable();
  kernel.metrics().counter("x", "")->add(3);
  obs::ObsSnapshot snap;
  snap.metrics = kernel.metrics().snapshot();
  snap.source = "roundtrip";
  const obs::PrometheusExporter exporter;
  const std::string path =
      ::testing::TempDir() + "obs_roundtrip" + exporter.file_suffix();
  ASSERT_TRUE(exporter.write_file(snap, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream written;
  written << in.rdbuf();
  EXPECT_EQ(written.str(), exporter.render(snap));
  const auto bad = exporter.write_file(snap, "/nonexistent-dir/x.prom");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().ec, ErrorCode::kIo);
}

}  // namespace
}  // namespace drt
