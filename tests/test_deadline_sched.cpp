// EDF deadline class (SchedClass::kDeadline): within one priority level,
// tasks are ordered by absolute deadline (earliest first) and sort ahead of
// fixed-priority tasks at that level in the ready queue (though neither band
// preempts the other at equal priority); across levels the priority bitmap
// still rules. All tests run on the quiet configuration, so dispatch and
// completion times are exact.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

TaskParams edf(std::string name, SimDuration period, int priority = 10,
               SimDuration deadline = 0) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kPeriodic;
  params.period = period;
  params.priority = priority;
  params.deadline = deadline;
  params.sched = SchedClass::kDeadline;
  return params;
}

TaskParams fp(std::string name, SimDuration period, int priority = 10) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kPeriodic;
  params.period = period;
  params.priority = priority;
  return params;
}

/// Completion marks: each job records (name, finish time) after its demand.
using Marks = std::vector<std::pair<std::string, SimTime>>;

TaskBody marking_body(Marks& marks, std::string name, SimDuration demand) {
  return [&marks, name = std::move(name),
          demand](TaskContext& ctx) -> TaskCoro {
    while (!ctx.stop_requested()) {
      co_await ctx.consume(demand);
      marks.emplace_back(name, ctx.now());
      co_await ctx.wait_next_period();
    }
  };
}

// ------------------------------------------------------------ validation --

TEST(DeadlineCreate, RejectsNonPeriodicDeadlineClass) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  TaskParams params;
  params.name = "evt";
  params.type = TaskType::kAperiodic;
  params.sched = SchedClass::kDeadline;
  auto result = kernel.create_task(
      params, [](TaskContext&) -> TaskCoro { co_return; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "rtos.bad_task");
}

// -------------------------------------------------------------- ordering --

TEST(DeadlineSched, EarlierAbsoluteDeadlineRunsFirst) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // Same priority, released together at t=1ms: b's implicit deadline (11ms)
  // beats a's (21ms), so b runs to completion first.
  auto a = kernel.create_task(edf("a", milliseconds(20), 5),
                              marking_body(marks, "a", milliseconds(3)));
  auto b = kernel.create_task(edf("b", milliseconds(10), 5),
                              marking_body(marks, "b", milliseconds(3)));
  ASSERT_TRUE(kernel.start_task(a.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(b.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(8));
  ASSERT_GE(marks.size(), 2u);
  EXPECT_EQ(marks[0], std::make_pair(std::string("b"), milliseconds(4)));
  EXPECT_EQ(marks[1], std::make_pair(std::string("a"), milliseconds(7)));
}

TEST(DeadlineSched, ConstrainedDeadlineOverridesPeriodOrdering) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // a has the LONGER period but a tight constrained deadline (3ms), so its
  // absolute deadline (4ms) precedes b's implicit one (11ms).
  auto a = kernel.create_task(edf("a", milliseconds(20), 5, milliseconds(3)),
                              marking_body(marks, "a", milliseconds(1)));
  auto b = kernel.create_task(edf("b", milliseconds(10), 5),
                              marking_body(marks, "b", milliseconds(1)));
  ASSERT_TRUE(kernel.start_task(a.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(b.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(4));
  ASSERT_GE(marks.size(), 2u);
  EXPECT_EQ(marks[0], std::make_pair(std::string("a"), milliseconds(2)));
  EXPECT_EQ(marks[1], std::make_pair(std::string("b"), milliseconds(3)));
}

TEST(DeadlineSched, PreemptsRunningTaskOnEarlierDeadline) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // a (deadline 21ms) is mid-job when b releases at t=3ms with deadline 9ms:
  // b preempts, finishes at 4ms, a resumes and finishes at 8ms.
  auto a = kernel.create_task(edf("a", milliseconds(20), 5),
                              marking_body(marks, "a", milliseconds(6)));
  auto b = kernel.create_task(edf("b", milliseconds(6), 5),
                              marking_body(marks, "b", milliseconds(1)));
  ASSERT_TRUE(kernel.start_task(a.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(b.value(), milliseconds(3)).ok());
  engine.run_until(milliseconds(9) - 1);
  ASSERT_GE(marks.size(), 2u);
  EXPECT_EQ(marks[0], std::make_pair(std::string("b"), milliseconds(4)));
  EXPECT_EQ(marks[1], std::make_pair(std::string("a"), milliseconds(8)));
  EXPECT_GE(kernel.find_task(a.value())->stats.preemptions, 1u);
}

TEST(DeadlineSched, NoRoundRobinSlicingWithinTheBand) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // Equal-priority EDF peers never time-slice: a (deadline 11ms) runs its
  // whole 4ms job before b (deadline 13ms) starts. Under round-robin the two
  // would interleave and a would finish well after 5ms.
  auto a = kernel.create_task(edf("a", milliseconds(10), 5),
                              marking_body(marks, "a", milliseconds(4)));
  auto b = kernel.create_task(edf("b", milliseconds(12), 5),
                              marking_body(marks, "b", milliseconds(4)));
  ASSERT_TRUE(kernel.start_task(a.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(b.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(10));
  ASSERT_GE(marks.size(), 2u);
  EXPECT_EQ(marks[0], std::make_pair(std::string("a"), milliseconds(5)));
  EXPECT_EQ(marks[1], std::make_pair(std::string("b"), milliseconds(9)));
}

// ----------------------------------------------------- RM/EDF coexistence --

TEST(DeadlineSched, EdfBandIsAheadOfFixedPriorityInTheReadyQueue) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // A prio-1 hog keeps the CPU until 3ms, so rm and dl (both prio 5,
  // released at 1ms) queue up together. A deadline task never PREEMPTS an
  // equal-priority fixed-priority task, but in the ready queue the EDF band
  // (finite deadline) sorts ahead of the FP band — when the hog finishes,
  // dl is dispatched first even though rm enqueued before it.
  auto hog = kernel.create_task(fp("hog", milliseconds(50), 1),
                                marking_body(marks, "hog", milliseconds(2)));
  auto rm = kernel.create_task(fp("rm", milliseconds(20), 5),
                               marking_body(marks, "rm", milliseconds(2)));
  auto dl = kernel.create_task(edf("dl", milliseconds(20), 5),
                               marking_body(marks, "dl", milliseconds(2)));
  ASSERT_TRUE(kernel.start_task(hog.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(rm.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(dl.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(8));
  ASSERT_GE(marks.size(), 3u);
  EXPECT_EQ(marks[0], std::make_pair(std::string("hog"), milliseconds(3)));
  EXPECT_EQ(marks[1], std::make_pair(std::string("dl"), milliseconds(5)));
  EXPECT_EQ(marks[2], std::make_pair(std::string("rm"), milliseconds(7)));
}

TEST(DeadlineSched, HigherPriorityFixedTaskStillBeatsTheBand) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // Across priority levels the bitmap rules: prio 1 (RM) beats prio 5 (EDF)
  // regardless of deadlines.
  auto rm = kernel.create_task(fp("rm", milliseconds(20), 1),
                               marking_body(marks, "rm", milliseconds(2)));
  auto dl = kernel.create_task(edf("dl", milliseconds(10), 5),
                               marking_body(marks, "dl", milliseconds(2)));
  ASSERT_TRUE(kernel.start_task(rm.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(dl.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(6));
  ASSERT_GE(marks.size(), 2u);
  EXPECT_EQ(marks[0], std::make_pair(std::string("rm"), milliseconds(3)));
  EXPECT_EQ(marks[1], std::make_pair(std::string("dl"), milliseconds(5)));
}

// --------------------------------------------------------- miss accounting --

TEST(DeadlineSched, OverrunningJobCountsMissesAndContinues) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // 2ms period, 3ms demand: every job overruns its implicit deadline.
  auto id = kernel.create_task(edf("slow", milliseconds(2), 5),
                               marking_body(marks, "slow", milliseconds(3)));
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(50));
  const Task* task = kernel.find_task(id.value());
  EXPECT_GT(task->stats.deadline_misses, 0u);
  EXPECT_GT(task->stats.overruns, 0u);
  EXPECT_GE(task->stats.completions, 10u);
}

TEST(DeadlineSched, FeasibleEdfSetRunsMissFree) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // U = 0.5 + 0.25 = 0.75 on one CPU: EDF must schedule it without misses.
  auto a = kernel.create_task(edf("a", milliseconds(4), 5),
                              marking_body(marks, "a", milliseconds(2)));
  auto b = kernel.create_task(edf("b", milliseconds(8), 5),
                              marking_body(marks, "b", milliseconds(2)));
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(milliseconds(200));
  EXPECT_EQ(kernel.find_task(a.value())->stats.deadline_misses, 0u);
  EXPECT_EQ(kernel.find_task(b.value())->stats.deadline_misses, 0u);
  EXPECT_GE(kernel.find_task(a.value())->stats.completions, 40u);
}

}  // namespace
}  // namespace drt::rtos
