// Sporadic components: descriptor parsing/validation, MIT enforcement via
// JobContext::next_event, admission analysis treating sporadics as periodic
// at the MIT, and the management channel on event-driven tasks.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

constexpr const char* kAlarmXml = R"(<?xml version="1.0"?>
<drt:component name="alarm" desc="sporadic alarm handler"
    type="sporadic" cpuusage="0.1">
  <implementation bincode="spor.Alarm"/>
  <sporadictask minarrival="1000000" runoncpu="0" priority="2"
                trigger="alrmin"/>
  <inport name="alrmin" interface="RTAI.Mailbox" type="Byte" size="16"/>
</drt:component>)";

TEST(SporadicDescriptor, ParsesSporadicTask) {
  auto parsed = parse_descriptor(kAlarmXml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& d = parsed.value();
  EXPECT_EQ(d.type, rtos::TaskType::kSporadic);
  ASSERT_TRUE(d.sporadic.has_value());
  EXPECT_EQ(d.sporadic->min_interarrival, milliseconds(1));
  EXPECT_EQ(d.sporadic->priority, 2);
  EXPECT_EQ(d.sporadic->trigger_port, "alrmin");
  EXPECT_EQ(d.target_cpu(), 0u);
}

TEST(SporadicDescriptor, RoundTripsThroughWriter) {
  auto parsed = parse_descriptor(kAlarmXml);
  ASSERT_TRUE(parsed.ok());
  auto reparsed = parse_descriptor(write_descriptor(parsed.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().sporadic->min_interarrival, milliseconds(1));
  EXPECT_EQ(reparsed.value().sporadic->trigger_port, "alrmin");
}

TEST(SporadicDescriptor, RequiresSporadicTaskElement) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="a" type="sporadic">
      <implementation bincode="x"/>
      <inport name="in" interface="RTAI.Mailbox" type="Byte" size="4"/>
    </drt:component>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("sporadictask"), std::string::npos);
}

TEST(SporadicDescriptor, RequiresMailboxTrigger) {
  // SHM in-port only: no valid trigger.
  auto parsed = parse_descriptor(R"(
    <drt:component name="a" type="sporadic">
      <implementation bincode="x"/>
      <sporadictask minarrival="1000"/>
      <inport name="in" interface="RTAI.SHM" type="Byte" size="4"/>
    </drt:component>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("Mailbox in-port"),
            std::string::npos);
}

TEST(SporadicDescriptor, NamedTriggerMustExist) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="a" type="sporadic">
      <implementation bincode="x"/>
      <sporadictask minarrival="1000" trigger="ghost"/>
      <inport name="in" interface="RTAI.Mailbox" type="Byte" size="4"/>
    </drt:component>)");
  ASSERT_FALSE(parsed.ok());
}

TEST(SporadicDescriptor, RejectsNonPositiveMit) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="a" type="sporadic">
      <implementation bincode="x"/>
      <sporadictask minarrival="0"/>
      <inport name="in" interface="RTAI.Mailbox" type="Byte" size="4"/>
    </drt:component>)");
  ASSERT_FALSE(parsed.ok());
}

// ------------------------------------------------------------- behaviour --

/// Handles one event per next_event() call, recording processing times.
class AlarmHandler : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      auto event = co_await job.next_event();
      if (!event.has_value()) break;
      co_await job.consume(microseconds(50));
      handled_at.push_back(job.now());
      payloads.push_back(rtos::message_to_string(*event));
    }
  }
  std::vector<SimTime> handled_at;
  std::vector<std::string> payloads;
};

struct SporadicFixture : public ::testing::Test {
  SporadicFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory("spor.Alarm", [this] {
      auto instance = std::make_unique<AlarmHandler>();
      handler = instance.get();
      return instance;
    });
  }

  void deploy() {
    auto parsed = parse_descriptor(kAlarmXml);
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(drcr.register_component(std::move(parsed).take()).ok());
    ASSERT_EQ(drcr.state_of("alarm").value(), ComponentState::kActive);
    trigger = kernel.mailbox_find("alrmin");
    ASSERT_NE(trigger, nullptr);
  }

  void fire(const std::string& payload) {
    (void)kernel.mailbox_send(*trigger, rtos::message_from_string(payload));
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  AlarmHandler* handler = nullptr;
  rtos::Mailbox* trigger = nullptr;
};

TEST_F(SporadicFixture, HandlesSpacedEventsImmediately) {
  deploy();
  engine.schedule_at(milliseconds(10), [this] { fire("a"); });
  engine.schedule_at(milliseconds(30), [this] { fire("b"); });
  engine.run_until(milliseconds(50));
  ASSERT_EQ(handler->handled_at.size(), 2u);
  // Handled at arrival + 50us job (+ the poll cost before the wait).
  EXPECT_NEAR(static_cast<double>(handler->handled_at[0]),
              static_cast<double>(milliseconds(10) + microseconds(50)),
              1'000.0);
  EXPECT_EQ(handler->payloads[0], "a");
  EXPECT_EQ(handler->payloads[1], "b");
}

TEST_F(SporadicFixture, BurstIsThrottledToMinInterarrival) {
  deploy();
  // A burst of 5 events at t=10ms, MIT = 1ms: processing must spread out.
  engine.schedule_at(milliseconds(10), [this] {
    for (int i = 0; i < 5; ++i) fire("e" + std::to_string(i));
  });
  engine.run_until(milliseconds(30));
  ASSERT_EQ(handler->handled_at.size(), 5u);
  for (std::size_t i = 1; i < handler->handled_at.size(); ++i) {
    EXPECT_GE(handler->handled_at[i] - handler->handled_at[i - 1],
              milliseconds(1))
        << "events " << i - 1 << " -> " << i;
  }
  // No events lost; order preserved.
  EXPECT_EQ(handler->payloads.front(), "e0");
  EXPECT_EQ(handler->payloads.back(), "e4");
}

TEST_F(SporadicFixture, IdleBetweenEventsConsumesNoCpu) {
  deploy();
  engine.schedule_at(milliseconds(5), [this] { fire("x"); });
  engine.run_until(milliseconds(100));
  const rtos::Task* task = kernel.find_task("alarm");
  EXPECT_EQ(task->state, rtos::TaskState::kWaitingMailbox);
  // One event: ~50us of job + poll cost.
  EXPECT_LT(task->stats.cpu_time, microseconds(60));
}

TEST_F(SporadicFixture, SoftSuspensionParksEventProcessing) {
  deploy();
  auto* alarm = drcr.instance_of("alarm");
  // First event processed normally.
  engine.schedule_at(milliseconds(5), [this] { fire("pre"); });
  engine.run_until(milliseconds(10));
  EXPECT_EQ(handler->handled_at.size(), 1u);
  // SUSPEND drains at the next event boundary — which is immediately, since
  // the component is already parked between events.
  ASSERT_TRUE(alarm->send_command("SUSPEND").ok());
  engine.schedule_at(milliseconds(20), [this] { fire("during"); });
  engine.run_until(milliseconds(50));
  EXPECT_EQ(handler->handled_at.size(), 1u);  // "during" parked
  ASSERT_TRUE(alarm->send_command("RESUME").ok());
  engine.run_until(milliseconds(80));
  EXPECT_EQ(handler->handled_at.size(), 2u);
  EXPECT_EQ(handler->payloads.back(), "during");
}

// ------------------------------------------------------------- admission --

TEST(SporadicAdmission, CountedByRmAndRta) {
  ComponentDescriptor sporadic;
  sporadic.name = "spor";
  sporadic.bincode = "x";
  sporadic.type = rtos::TaskType::kSporadic;
  sporadic.cpu_usage = 0.5;
  sporadic.sporadic = SporadicSpec{milliseconds(1), 0, 1, ""};
  sporadic.ports.push_back({PortDirection::kIn, "trig",
                            PortInterface::kMailbox, rtos::DataType::kByte,
                            4, false});

  ComponentDescriptor periodic;
  periodic.name = "peri";
  periodic.bincode = "x";
  periodic.type = rtos::TaskType::kPeriodic;
  periodic.cpu_usage = 0.5;
  periodic.periodic = PeriodicSpec{1000.0, 0, 5};

  SystemView view;
  view.active = {&sporadic};
  view.cpu_count = 1;

  // RM: U = 1.0 for n=2 > 0.828 -> reject.
  RateMonotonicResolver rm;
  EXPECT_FALSE(rm.admit(periodic, view).ok());
  // RTA (no overhead): 0.5ms + 0.5ms in 1ms, same priority class treated
  // conservatively as interference -> R = 1ms == D: feasible exactly.
  ResponseTimeResolver rta(0);
  EXPECT_TRUE(rta.admit(periodic, view).ok())
      << rta.admit(periodic, view).error().message;
  // With a tighter sporadic (more usage) RTA rejects.
  sporadic.cpu_usage = 0.6;
  EXPECT_FALSE(rta.admit(periodic, view).ok());
}

}  // namespace
}  // namespace drt::drcom
