// Latency model and Linux-domain load generator: the statistical machinery
// behind Table 1. These tests pin the *shape* the model must produce — the
// same shape EXPERIMENTS.md compares against the paper.
#include <gtest/gtest.h>

#include "rtos/latency_model.hpp"
#include "rtos/load.hpp"
#include "rtos/sim_engine.hpp"
#include "util/stats.hpp"

namespace drt::rtos {
namespace {

StatSummary sample_model(const LatencyModel& model, bool idle, int n,
                         std::uint64_t seed = 99) {
  Rng rng(seed);
  SampleSeries series;
  for (int i = 0; i < n; ++i) {
    series.add(static_cast<double>(model.sample_release_error(idle, rng)));
  }
  return series.summary();
}

TEST(LatencyModel, TimerErrorCentersOnCalibration) {
  LatencyModel model;
  Rng rng(1);
  SampleSeries series;
  for (int i = 0; i < 20'000; ++i) {
    series.add(static_cast<double>(model.sample_timer_error(rng)));
  }
  const auto s = series.summary();
  EXPECT_NEAR(s.average, model.config().timer_calibration_ns, 50.0);
  EXPECT_LT(s.avedev, 3.0 * model.config().timer_jitter_ns);
}

TEST(LatencyModel, WakeCostIsNonNegative) {
  LatencyModel model;
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(model.sample_wake_cost(true, rng), 0);
    EXPECT_GE(model.sample_wake_cost(false, rng), 0);
  }
}

TEST(LatencyModel, HotCpuShowsRawEarlyOffset) {
  // Stress-mode shape: large negative average, small deviation.
  LatencyModel model;
  const auto s = sample_model(model, /*idle=*/false, 20'000);
  EXPECT_LT(s.average, -15'000.0);
  EXPECT_LT(s.avedev, 2'000.0);
}

TEST(LatencyModel, IdleCpuRoughlyCancelsOffset) {
  // Light-mode shape: small average (idle wake cost cancels the early
  // offset), large deviation.
  LatencyModel model;
  const auto s = sample_model(model, /*idle=*/true, 20'000);
  EXPECT_GT(s.average, -8'000.0);
  EXPECT_LT(s.average, 8'000.0);
  EXPECT_GT(s.avedev, 2'000.0);
}

TEST(LatencyModel, Table1ShapeInvariants) {
  // The headline relations of Table 1, as model-level invariants:
  //   avg(stress) << avg(light) < ~0   and   avedev(stress) << avedev(light).
  LatencyModel model;
  const auto light = sample_model(model, true, 20'000);
  const auto stress = sample_model(model, false, 20'000);
  EXPECT_LT(stress.average, light.average - 10'000.0);
  EXPECT_LT(stress.avedev, light.avedev / 3.0);
  // MIN dips below the calibration offset in light mode (shallow-idle tail).
  EXPECT_LT(light.min, model.config().timer_calibration_ns);
  EXPECT_GT(light.max, 0.0);
}

TEST(LatencyModel, DeterministicForSeed) {
  LatencyModel model;
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample_release_error(true, a),
              model.sample_release_error(true, b));
  }
}

TEST(LatencyModel, ConfigIsAdjustable) {
  LatencyModelConfig config;
  config.timer_calibration_ns = 0.0;
  config.timer_jitter_ns = 0.0;
  config.idle_wake_mean_ns = 0.0;
  config.idle_wake_stddev_ns = 0.0;
  config.hot_wake_mean_ns = 0.0;
  config.hot_wake_stddev_ns = 0.0;
  config.spike_probability = 0.0;
  config.shallow_idle_probability = 0.0;
  LatencyModel model(config);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample_release_error(true, rng), 0);
  }
}

// -------------------------------------------------------------- LinuxLoad

TEST(LinuxLoad, LightLoadIsMostlyIdle) {
  SimEngine engine;
  LinuxLoad load(engine, 1, light_load(), Rng(5));
  load.start();
  int busy_samples = 0;
  const int n = 2'000;
  for (int i = 0; i < n; ++i) {
    engine.run_until(engine.now() + microseconds(500));
    busy_samples += load.busy(0) ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(busy_samples) / n, 0.15);
}

TEST(LinuxLoad, StressLoadIsMostlyBusy) {
  SimEngine engine;
  LinuxLoad load(engine, 1, stress_load(), Rng(6));
  load.start();
  int busy_samples = 0;
  const int n = 2'000;
  for (int i = 0; i < n; ++i) {
    engine.run_until(engine.now() + microseconds(500));
    busy_samples += load.busy(0) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(busy_samples) / n, 0.9);
}

TEST(LinuxLoad, PerCpuIndependentState) {
  SimEngine engine;
  LoadConfig config{0.5, milliseconds(1)};
  LinuxLoad load(engine, 2, config, Rng(7));
  load.start();
  bool differed = false;
  for (int i = 0; i < 200 && !differed; ++i) {
    engine.run_until(engine.now() + milliseconds(1));
    differed = load.busy(0) != load.busy(1);
  }
  EXPECT_TRUE(differed);
}

TEST(LinuxLoad, OutOfRangeCpuIsIdle) {
  SimEngine engine;
  LinuxLoad load(engine, 1, stress_load(), Rng(8));
  load.start();
  EXPECT_FALSE(load.busy(7));
}

}  // namespace
}  // namespace drt::rtos
