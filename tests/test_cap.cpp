// Typed capability channels (docs/CHANNELS.md): IDL-lite descriptor
// declarations, the CapRouter bind/revoke/rebind lifecycle, per-connection
// conservation accounting, the reply path, offer-cycle refusal at system
// validation, and the fuzzer's caps band.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "cap/channel.hpp"
#include "drcom/drcr.hpp"
#include "drcom/system_descriptor.hpp"
#include "test_helpers.hpp"
#include "testing/scenario.hpp"

namespace drt {
namespace {

using rtos::testing::quiet_config;

std::array<std::byte, 8> payload8(std::uint64_t value) {
  std::array<std::byte, 8> bytes{};
  std::memcpy(bytes.data(), &value, sizeof(value));
  return bytes;
}

cap::ProtocolSpec ctl_protocol() {
  cap::ProtocolSpec spec;
  spec.name = "ctl";
  cap::MethodSpec ping;
  ping.name = "ping";
  ping.ordinal = 1;
  ping.request_bytes = 8;
  spec.methods.push_back(std::move(ping));
  cap::MethodSpec query;
  query.name = "query";
  query.ordinal = 2;
  query.request_bytes = 8;
  query.response_bytes = 4;
  spec.methods.push_back(std::move(query));
  return spec;
}

/// Per-connection conservation (oracle invariant 12).
void expect_conserved(const cap::Connection& connection) {
  const auto& c = connection.counters();
  EXPECT_EQ(c.sent, c.accepted + c.rejected + c.revoked)
      << connection.client() << " -> " << connection.provider() << "/"
      << connection.protocol();
}

// ------------------------------------------------------------- descriptor

constexpr const char* kCapableXml = R"(<?xml version="1.0"?>
<drt:component name="cam" desc="capability provider"
    type="periodic" cpuusage="0.1">
  <implementation bincode="test.Cam"/>
  <periodictask frequence="100" runoncpu="0" priority="5"/>
  <protocol name="ctl">
    <method name="ping" ordinal="1" request="8"/>
    <method name="query" ordinal="2" request="8" response="4"/>
  </protocol>
  <expose protocol="ctl" queue="16"/>
  <use protocol="tune" from="tuner"/>
</drt:component>)";

TEST(CapDescriptor, ParsesProtocolExposeUse) {
  auto parsed = drcom::parse_descriptor(kCapableXml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto descriptor = std::move(parsed).take();
  ASSERT_EQ(descriptor.protocols.size(), 1u);
  const auto& protocol = descriptor.protocols.front();
  EXPECT_EQ(protocol.name, "ctl");
  ASSERT_EQ(protocol.methods.size(), 2u);
  EXPECT_EQ(protocol.methods[0].ordinal, 1u);
  EXPECT_EQ(protocol.methods[0].request_bytes, 8u);
  EXPECT_EQ(protocol.methods[0].response_bytes, 0u);  // one-way
  EXPECT_EQ(protocol.methods[1].response_bytes, 4u);
  ASSERT_EQ(descriptor.exposes.size(), 1u);
  EXPECT_EQ(descriptor.exposes.front().protocol, "ctl");
  EXPECT_EQ(descriptor.exposes.front().queue, 16u);
  ASSERT_EQ(descriptor.uses.size(), 1u);
  EXPECT_EQ(descriptor.uses.front().protocol, "tune");
  EXPECT_EQ(descriptor.uses.front().provider, "tuner");
}

TEST(CapDescriptor, CapabilityDialectRoundTripsFixpoint) {
  auto first = drcom::parse_descriptor(kCapableXml);
  ASSERT_TRUE(first.ok());
  const std::string written = drcom::write_descriptor(first.value());
  auto second = drcom::parse_descriptor(written);
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  // write(parse(write(d))) == write(d): the serialized dialect is stable.
  EXPECT_EQ(drcom::write_descriptor(second.value()), written);
  EXPECT_EQ(second.value().protocols.size(), 1u);
  EXPECT_EQ(second.value().exposes.size(), 1u);
  EXPECT_EQ(second.value().uses.size(), 1u);
}

TEST(CapDescriptor, ProtocolLessDescriptorStaysOnSeedDialect) {
  // A descriptor with no capability declarations must serialize with no
  // trace of the new elements — byte-identical to the pre-capability
  // dialect (the quickstart example is the runtime compat witness).
  constexpr const char* kSeedXml = R"(<?xml version="1.0"?>
<drt:component name="blink" desc="seed dialect"
    type="periodic" cpuusage="0.05">
  <implementation bincode="test.Blink"/>
  <periodictask frequence="10" runoncpu="0" priority="5"/>
  <outport name="beat" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>)";
  auto parsed = drcom::parse_descriptor(kSeedXml);
  ASSERT_TRUE(parsed.ok());
  const std::string written = drcom::write_descriptor(parsed.value());
  EXPECT_EQ(written.find("protocol"), std::string::npos);
  EXPECT_EQ(written.find("expose"), std::string::npos);
  EXPECT_EQ(written.find("use"), std::string::npos);
  auto reparsed = drcom::parse_descriptor(written);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(drcom::write_descriptor(reparsed.value()), written);
}

TEST(CapDescriptor, ExposeWithoutDeclarationIsRefused) {
  auto parsed = drcom::parse_descriptor(kCapableXml);
  ASSERT_TRUE(parsed.ok());
  auto descriptor = std::move(parsed).take();
  descriptor.protocols.clear();  // expose "ctl" now dangles
  const auto valid = drcom::validate(descriptor);
  ASSERT_FALSE(valid.ok());
  EXPECT_EQ(valid.error().ec, ErrorCode::kInvalidDescriptor);
}

TEST(CapDescriptor, DuplicateOrdinalIsRefused) {
  auto parsed = drcom::parse_descriptor(kCapableXml);
  ASSERT_TRUE(parsed.ok());
  auto descriptor = std::move(parsed).take();
  descriptor.protocols.front().methods[1].ordinal = 1;
  EXPECT_FALSE(drcom::validate(descriptor).ok());
}

// -------------------------------------------------------------- CapRouter

struct RouterFixture : public ::testing::Test {
  RouterFixture() : kernel(engine, quiet_config()), router(kernel) {}

  rtos::SimEngine engine;
  rtos::RtKernel kernel;
  cap::CapRouter router;
};

TEST_F(RouterFixture, PublishBindCallDeliver) {
  cap::ServerEnd* server = router.publish("prov", ctl_protocol()).value();
  cap::Connection* connection = router.ensure_connection("cli", "prov", "ctl");
  ASSERT_NE(connection, nullptr);
  EXPECT_TRUE(connection->bound());
  EXPECT_FALSE(connection->remote());

  EXPECT_EQ(connection->call(1, payload8(0xabcd)), ErrorCode::kNone);
  auto frame = server->try_next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->method->ordinal, 1u);
  EXPECT_EQ(frame->connection, connection->id());
  std::uint64_t value = 0;
  ASSERT_EQ(frame->payload().size(), 8u);
  std::memcpy(&value, frame->payload().data(), sizeof(value));
  EXPECT_EQ(value, 0xabcdu);

  EXPECT_EQ(connection->counters().sent, 1u);
  EXPECT_EQ(connection->counters().accepted, 1u);
  expect_conserved(*connection);
  EXPECT_FALSE(server->try_next().has_value());
}

TEST_F(RouterFixture, RingFullRejectsWithLimitExceeded) {
  (void)router.publish("prov", ctl_protocol(), /*queue=*/2).value();
  cap::Connection* connection = router.ensure_connection("cli", "prov", "ctl");
  EXPECT_EQ(connection->call(1, payload8(1)), ErrorCode::kNone);
  EXPECT_EQ(connection->call(1, payload8(2)), ErrorCode::kNone);
  EXPECT_EQ(connection->call(1, payload8(3)), ErrorCode::kLimitExceeded);
  EXPECT_EQ(connection->counters().rejected, 1u);
  expect_conserved(*connection);
}

TEST_F(RouterFixture, CallerBugsAreTypedAndUncounted) {
  (void)router.publish("prov", ctl_protocol()).value();
  cap::Connection* connection = router.ensure_connection("cli", "prov", "ctl");
  // Unknown ordinal and wrong payload size are caller bugs, not traffic.
  EXPECT_EQ(connection->call(99, payload8(0)), ErrorCode::kInvalidArgument);
  std::array<std::byte, 3> wrong{};
  EXPECT_EQ(connection->call(1, wrong), ErrorCode::kInvalidArgument);
  EXPECT_EQ(connection->counters().sent, 0u);
  expect_conserved(*connection);
}

TEST_F(RouterFixture, RevokeOnProviderDownThenRebindSamePointer) {
  (void)router.publish("prov", ctl_protocol()).value();
  cap::Connection* connection = router.ensure_connection("cli", "prov", "ctl");
  EXPECT_EQ(connection->call(1, payload8(1)), ErrorCode::kNone);

  router.on_component_down("prov");
  EXPECT_FALSE(connection->bound());
  EXPECT_EQ(connection->call(1, payload8(2)), ErrorCode::kCapabilityRevoked);
  EXPECT_EQ(connection->counters().revoked, 1u);

  // Provider comes back: the SAME Connection object re-binds, so pointers
  // held by client components stay valid across provider churn.
  (void)router.publish("prov", ctl_protocol()).value();
  EXPECT_TRUE(connection->bound());
  cap::ServerEnd* server = router.find_server("prov", "ctl");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(connection->call(1, payload8(3)), ErrorCode::kNone);
  EXPECT_TRUE(server->try_next().has_value());

  EXPECT_EQ(connection->counters().sent, 3u);
  EXPECT_EQ(connection->counters().accepted, 2u);
  expect_conserved(*connection);
  EXPECT_GE(router.bind_count(), 2u);
  EXPECT_GE(router.revocation_count(), 1u);
}

TEST_F(RouterFixture, RetiredFoldsDestroyedConnectionCounters) {
  (void)router.publish("prov", ctl_protocol()).value();
  cap::Connection* connection = router.ensure_connection("cli", "prov", "ctl");
  EXPECT_EQ(connection->call(1, payload8(1)), ErrorCode::kNone);
  EXPECT_EQ(connection->call(1, payload8(2)), ErrorCode::kNone);
  router.on_component_down("cli");  // client leaves: connection destroyed
  EXPECT_EQ(router.connection_count(), 0u);
  EXPECT_EQ(router.retired().sent, 2u);
  EXPECT_EQ(router.retired().accepted, 2u);
}

TEST_F(RouterFixture, ConnectRequiresPublishedProvider) {
  auto missing = router.connect("ext", "ghost", "ctl");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().ec, ErrorCode::kNotFound);
  (void)router.publish("prov", ctl_protocol()).value();
  auto connected = router.connect("ext", "prov", "ctl");
  ASSERT_TRUE(connected.ok());
  EXPECT_TRUE(connected.value()->bound());
}

TEST_F(RouterFixture, ReplyPathRoundTrips) {
  cap::ServerEnd* server = router.publish("prov", ctl_protocol()).value();
  cap::Connection* connection = router.ensure_connection("cli", "prov", "ctl");
  ASSERT_NE(connection->reply_mailbox(), nullptr);

  EXPECT_EQ(connection->call(2, payload8(7)), ErrorCode::kNone);
  auto frame = server->try_next();
  ASSERT_TRUE(frame.has_value());
  std::array<std::byte, 4> reply{};
  std::int32_t answer = 42;
  std::memcpy(reply.data(), &answer, sizeof(answer));
  EXPECT_TRUE(server->reply(*frame, reply));

  auto message = kernel.mailbox_try_receive(*connection->reply_mailbox());
  ASSERT_TRUE(message.has_value());
  ASSERT_GE(message->bytes().size(), cap::kHeaderBytes);
  const auto header = cap::decode_header(message->bytes().data());
  EXPECT_EQ(header.ordinal, 2u);
  EXPECT_EQ(message->bytes().size(), cap::kHeaderBytes + 4);

  // A reply to a one-way frame is refused.
  EXPECT_EQ(connection->call(1, payload8(8)), ErrorCode::kNone);
  auto oneway = server->try_next();
  ASSERT_TRUE(oneway.has_value());
  EXPECT_FALSE(server->reply(*oneway, reply));
  // So is a mis-sized reply payload.
  EXPECT_EQ(connection->call(2, payload8(9)), ErrorCode::kNone);
  auto two_way = server->try_next();
  ASSERT_TRUE(two_way.has_value());
  std::array<std::byte, 2> short_reply{};
  EXPECT_FALSE(server->reply(*two_way, short_reply));
}

TEST_F(RouterFixture, MalformedInboxBytesAreDroppedAndCounted) {
  cap::ServerEnd* server = router.publish("prov", ctl_protocol()).value();
  // Raw bytes shoved straight into the cap inbox (no valid frame header).
  ASSERT_TRUE(
      kernel.mailbox_send(server->inbox(), rtos::message_from_string("junk")));
  EXPECT_FALSE(server->try_next().has_value());
  EXPECT_EQ(server->bad_frames(), 1u);
}

// ------------------------------------------------------------------- DRCR

class IdleComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      co_await job.next_cycle();
    }
  }
};

drcom::ComponentDescriptor cap_component(std::string name) {
  drcom::ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "test.Idle";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.05;
  d.periodic = drcom::PeriodicSpec{100.0, 0, 5};
  return d;
}

struct DrcrCapFixture : public ::testing::Test {
  DrcrCapFixture() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory(
        "test.Idle", [] { return std::make_unique<IdleComponent>(); });
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  drcom::Drcr drcr;
};

TEST_F(DrcrCapFixture, BindsDeclaredRoutesAtActivationRevokesOnDisable) {
  auto provider = cap_component("prov");
  provider.protocols.push_back(ctl_protocol());
  provider.exposes.push_back(drcom::ExposeSpec{"ctl", 8});
  auto consumer = cap_component("cli");
  consumer.uses.push_back(drcom::UseSpec{"ctl", "prov"});

  ASSERT_TRUE(drcr.register_component(provider).ok());
  ASSERT_TRUE(drcr.register_component(consumer).ok());
  auto& router = drcr.cap_router();
  ASSERT_NE(router.find_server("prov", "ctl"), nullptr);
  cap::Connection* route = router.find_connection("cli", "prov", "ctl");
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->bound());
  EXPECT_EQ(route->call(1, payload8(1)), ErrorCode::kNone);

  // Disabling the provider revokes the route (typed refusal, not a drop)…
  ASSERT_TRUE(drcr.disable_component("prov").ok());
  EXPECT_FALSE(route->bound());
  EXPECT_EQ(route->call(1, payload8(2)), ErrorCode::kCapabilityRevoked);
  // …and re-enabling re-binds the same endpoint.
  ASSERT_TRUE(drcr.enable_component("prov").ok());
  EXPECT_TRUE(route->bound());
  EXPECT_EQ(route->call(1, payload8(3)), ErrorCode::kNone);
  expect_conserved(*route);
}

TEST_F(DrcrCapFixture, ExternalClientsConnectAgainstExposedProtocols) {
  auto provider = cap_component("prov");
  provider.protocols.push_back(ctl_protocol());
  provider.exposes.push_back(drcom::ExposeSpec{"ctl", 8});
  ASSERT_TRUE(drcr.register_component(provider).ok());

  auto connected = drcr.connect_capability("mgr", "prov", "ctl");
  ASSERT_TRUE(connected.ok()) << connected.error().to_string();
  EXPECT_EQ(connected.value()->call(1, payload8(5)), ErrorCode::kNone);

  auto missing = drcr.connect_capability("mgr", "prov", "nope");
  EXPECT_FALSE(missing.ok());
}

TEST_F(DrcrCapFixture, OfferCycleIsRefusedAtValidation) {
  drcom::SystemDescriptor system;
  system.name = "loop";
  auto a = cap_component("sysa");
  a.protocols.push_back(ctl_protocol());
  a.exposes.push_back(drcom::ExposeSpec{"ctl", 8});
  a.uses.push_back(drcom::UseSpec{"ctl", "sysb"});
  auto b = cap_component("sysb");
  b.protocols.push_back(ctl_protocol());
  b.exposes.push_back(drcom::ExposeSpec{"ctl", 8});
  b.uses.push_back(drcom::UseSpec{"ctl", "sysa"});
  system.components = {a, b};
  system.offers.push_back(drcom::OfferSpec{"ctl", "sysa", "sysb"});
  system.offers.push_back(drcom::OfferSpec{"ctl", "sysb", "sysa"});

  const auto valid = drcom::validate_system(system);
  ASSERT_FALSE(valid.ok());
  EXPECT_EQ(valid.error().ec, ErrorCode::kInvalidDescriptor);
  EXPECT_NE(valid.error().to_string().find("cycle"), std::string::npos);
  // deploy_system runs the same validation: the cycle never deploys.
  EXPECT_FALSE(drcr.deploy_system(system).ok());
  EXPECT_EQ(drcr.active_count(), 0u);
}

// ------------------------------------------------------------ fuzz band

TEST(CapScenario, CapsBandGeneratesCapActionsOnlyWhenEnabled) {
  testing::ScenarioConfig config;
  config.action_count = 300;
  auto count_caps = [&](std::uint64_t seed) {
    std::size_t caps = 0;
    for (const auto& action : testing::generate_actions(seed, config)) {
      if (action.kind == testing::ActionKind::kCapCall ||
          action.kind == testing::ActionKind::kCapConnect ||
          action.kind == testing::ActionKind::kCapDeployCycle) {
        ++caps;
      }
    }
    return caps;
  };

  config.caps = false;
  std::size_t without = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) without += count_caps(seed);
  EXPECT_EQ(without, 0u);

  config.caps = true;
  std::size_t with = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) with += count_caps(seed);
  EXPECT_GT(with, 0u);
}

}  // namespace
}  // namespace drt
