// Shared helpers for kernel-level tests: a "quiet" configuration with every
// stochastic latency source zeroed, so scheduling arithmetic is exact.
#pragma once

#include "rtos/kernel.hpp"

namespace drt::rtos::testing {

inline KernelConfig quiet_config(std::size_t cpus = 2) {
  KernelConfig config;
  config.cpus = cpus;
  config.context_switch_ns = 0;
  config.latency.timer_calibration_ns = 0.0;
  config.latency.timer_jitter_ns = 0.0;
  config.latency.idle_wake_mean_ns = 0.0;
  config.latency.idle_wake_stddev_ns = 0.0;
  config.latency.hot_wake_mean_ns = 0.0;
  config.latency.hot_wake_stddev_ns = 0.0;
  config.latency.spike_probability = 0.0;
  config.latency.shallow_idle_probability = 0.0;
  config.load.busy_fraction = 0.0;
  return config;
}

}  // namespace drt::rtos::testing
