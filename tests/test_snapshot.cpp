// Deployment snapshots: serialize the DRCR's declarative state, restore it
// into a fresh runtime, and confirm equivalence — plus the kRestart
// watchdog action of the adaptation manager.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "drcom/adaptation.hpp"
#include "drcom/snapshot.hpp"
#include "test_helpers.hpp"
#include "testing/scenario.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

class Echo : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(1'000);
      co_await job.next_cycle();
    }
  }
};

struct World {
  World() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory(
        "snap.Echo", [] { return std::make_unique<Echo>(); });
  }
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
};

ComponentDescriptor component(std::string name,
                              std::vector<std::string> outs = {},
                              std::vector<std::string> ins = {}) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "snap.Echo";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.05;
  d.periodic = PeriodicSpec{100.0, 0, 5};
  for (auto& out : outs) {
    d.ports.push_back({PortDirection::kOut, std::move(out),
                       PortInterface::kShm, rtos::DataType::kInteger, 1});
  }
  for (auto& in : ins) {
    d.ports.push_back({PortDirection::kIn, std::move(in), PortInterface::kShm,
                       rtos::DataType::kInteger, 1});
  }
  return d;
}

constexpr const char* kSystemXml = R"(<drt:system name="pipe">
  <drt:component name="src" type="periodic" cpuusage="0.1">
    <implementation bincode="snap.Echo"/>
    <periodictask frequence="100" runoncpu="0" priority="3"/>
    <outport name="flow" interface="RTAI.SHM" type="Integer" size="1"/>
  </drt:component>
  <drt:component name="dst" type="periodic" cpuusage="0.1">
    <implementation bincode="snap.Echo"/>
    <periodictask frequence="100" runoncpu="0" priority="4"/>
    <inport name="flow" interface="RTAI.SHM" type="Integer" size="1"/>
  </drt:component>
  <connection from="src.flow" to="dst.flow"/>
</drt:system>)";

TEST(Snapshot, CapturesSystemsStandalonesAndDisabledState) {
  World world;
  ASSERT_TRUE(world.drcr
                  .deploy_system(
                      parse_system_descriptor(kSystemXml).value())
                  .ok());
  ASSERT_TRUE(world.drcr.register_component(component("solo")).ok());
  ASSERT_TRUE(world.drcr.register_component(component("off")).ok());
  ASSERT_TRUE(world.drcr.disable_component("off").ok());

  const std::string snapshot = snapshot_to_xml(world.drcr);

  // Restore into a FRESH runtime.
  World fresh;
  auto restored = restore_from_xml(fresh.drcr, snapshot);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(fresh.drcr.state_of("src").value(), ComponentState::kActive);
  EXPECT_EQ(fresh.drcr.state_of("dst").value(), ComponentState::kActive);
  EXPECT_EQ(fresh.drcr.state_of("solo").value(), ComponentState::kActive);
  EXPECT_EQ(fresh.drcr.state_of("off").value(), ComponentState::kDisabled);
  EXPECT_EQ(fresh.drcr.deployed_systems().size(), 1u);
  EXPECT_EQ(fresh.drcr.system_members("pipe").size(), 2u);
  // The restored contracts are intact (ports, rates).
  const ComponentDescriptor* src = fresh.drcr.descriptor_of("src");
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->outports().size(), 1u);
  EXPECT_DOUBLE_EQ(src->periodic->frequency_hz, 100.0);
}

TEST(Snapshot, RoundTripIsStable) {
  World world;
  ASSERT_TRUE(world.drcr
                  .deploy_system(
                      parse_system_descriptor(kSystemXml).value())
                  .ok());
  ASSERT_TRUE(world.drcr.register_component(component("solo")).ok());
  const std::string first = snapshot_to_xml(world.drcr);
  World fresh;
  ASSERT_TRUE(restore_from_xml(fresh.drcr, first).ok());
  EXPECT_EQ(snapshot_to_xml(fresh.drcr), first);
}

TEST(Snapshot, RestoreIntoOccupiedRuntimeReportsClashes) {
  World world;
  ASSERT_TRUE(world.drcr.register_component(component("solo")).ok());
  const std::string snapshot = snapshot_to_xml(world.drcr);
  // Restoring on top of itself: "solo" already exists.
  auto restored = restore_from_xml(world.drcr, snapshot);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, "drcom.partial_restore");
  EXPECT_NE(restored.error().message.find("solo"), std::string::npos);
}

TEST(Snapshot, GarbageInputRejected) {
  World world;
  EXPECT_FALSE(restore_from_xml(world.drcr, "<nope/>").ok());
  EXPECT_FALSE(restore_from_xml(world.drcr, "not xml").ok());
}

TEST(Snapshot, EmptyRuntimeSnapshotsAndRestores) {
  World world;
  const std::string snapshot = snapshot_to_xml(world.drcr);
  World fresh;
  EXPECT_TRUE(restore_from_xml(fresh.drcr, snapshot).ok());
  EXPECT_TRUE(fresh.drcr.component_names().empty());
}

// Regression (found by drt_fuzz, seed 19): unregistering a system member
// directly must prune it from the stored composition, or the snapshot emits
// the stale member — and if another system has since reused the name,
// restore clashes with itself.
TEST(Snapshot, UnregisteredSystemMemberLeavesTheComposition) {
  World world;
  ASSERT_TRUE(world.drcr
                  .deploy_system(parse_system_descriptor(kSystemXml).value())
                  .ok());
  ASSERT_TRUE(world.drcr.unregister_component("src").ok());

  // The stored composition followed the registry; its connection went too.
  const auto members = world.drcr.system_members("pipe");
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], "dst");
  ASSERT_NE(world.drcr.system_of("pipe"), nullptr);
  EXPECT_TRUE(world.drcr.system_of("pipe")->connections.empty());

  // Another deployment reuses the freed name; the snapshot must restore.
  ASSERT_TRUE(world.drcr
                  .deploy_system(SystemDescriptor{
                      "solo2", "", {component("src")}, {}, {}})
                  .ok());
  const std::string snapshot = snapshot_to_xml(world.drcr);
  World fresh;
  auto restored = restore_from_xml(fresh.drcr, snapshot);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(snapshot_to_xml(fresh.drcr), snapshot);
}

TEST(Snapshot, SystemEmptiedByUnregistrationIsDropped) {
  World world;
  ASSERT_TRUE(world.drcr
                  .deploy_system(parse_system_descriptor(kSystemXml).value())
                  .ok());
  ASSERT_TRUE(world.drcr.unregister_component("src").ok());
  ASSERT_TRUE(world.drcr.unregister_component("dst").ok());
  EXPECT_TRUE(world.drcr.deployed_systems().empty());
  const std::string snapshot = snapshot_to_xml(world.drcr);
  World fresh;
  EXPECT_TRUE(restore_from_xml(fresh.drcr, snapshot).ok());
  EXPECT_TRUE(fresh.drcr.component_names().empty());
}

// Seeded property test: randomized admitted states must round-trip —
// restore(snapshot(S)) succeeds into a fresh runtime and re-snapshots
// byte-identically, with and without the opt-in drt:channels section.
TEST(Snapshot, RandomizedStatesRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    World world;
    const std::int64_t count = rng.uniform(1, 6);
    for (std::int64_t i = 0; i < count; ++i) {
      auto d = drt::testing::random_descriptor(
          rng, "r" + std::to_string(i), /*cpus=*/1);
      d.bincode = "snap.Echo";  // instantiable in this World
      ASSERT_TRUE(world.drcr.register_component(std::move(d)).ok())
          << "seed " << seed;
      if (rng.uniform(0, 3) == 0) {
        ASSERT_TRUE(
            world.drcr.disable_component("r" + std::to_string(i)).ok());
      }
    }
    world.engine.run_until(world.kernel.now() + milliseconds(5));

    const bool with_channels = (seed % 2) == 0;
    const std::string snapshot =
        snapshot_to_xml(world.drcr, {.include_channels = with_channels});
    if (with_channels) {
      EXPECT_NE(snapshot.find("drt:channels"), std::string::npos);
    }
    World fresh;
    auto restored = restore_from_xml(fresh.drcr, snapshot);
    ASSERT_TRUE(restored.ok())
        << "seed " << seed << ": " << restored.error().to_string();
    // Contract fixpoint: compare without the live channel telemetry.
    EXPECT_EQ(snapshot_to_xml(fresh.drcr), snapshot_to_xml(world.drcr))
        << "seed " << seed;
  }
}

// ----------------------------------------------------- kRestart watchdog --

TEST(Snapshot, ChannelPressureSectionIsOptInAndRestorable) {
  World world;
  auto mailbox = world.kernel.mailbox_create("events", 4);
  ASSERT_TRUE(mailbox.ok());
  ASSERT_TRUE(world.kernel.mailbox_send(
      *mailbox.value(), rtos::message_from_string("pending")));
  ASSERT_TRUE(world.drcr.register_component(component("solo")).ok());

  // Default snapshot: contract only, no runtime data.
  EXPECT_EQ(snapshot_to_xml(world.drcr).find("drt:channels"),
            std::string::npos);

  const std::string snapshot =
      snapshot_to_xml(world.drcr, {.include_channels = true});
  auto doc = xml::parse(snapshot);
  ASSERT_TRUE(doc.ok());
  const xml::Element* channels =
      doc.value().root->first_child("drt:channels");
  ASSERT_NE(channels, nullptr);
  EXPECT_TRUE(channels->has_attribute("pool_live_slabs"));
  EXPECT_TRUE(channels->has_attribute("pool_free_bytes"));

  // The component's command/response mailboxes plus "events", name-ordered.
  const auto mailboxes = channels->children_named("drt:mailbox");
  ASSERT_GE(mailboxes.size(), 1u);
  const xml::Element* events = nullptr;
  for (const auto* element : mailboxes) {
    if (element->attribute_or("name", "") == "events") events = element;
  }
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->attribute_or("capacity", ""), "4");
  EXPECT_EQ(events->attribute_or("depth", ""), "1");
  EXPECT_EQ(events->attribute_or("sent", ""), "1");
  EXPECT_EQ(events->attribute_or("dropped", ""), "0");
  EXPECT_EQ(events->attribute_or("handoff", ""), "0");

  // The channels element is observability, not contract: restore skips it.
  World other;
  EXPECT_TRUE(restore_from_xml(other.drcr, snapshot).ok());
  EXPECT_EQ(other.drcr.active_count(), 1u);
}

TEST(RestartAction, CrashedComponentComesBackFresh) {
  World world;
  int instances = 0;
  world.drcr.factories().register_factory("snap.Bomb", [&instances] {
    ++instances;
    class Bomb : public RtComponent {
     public:
      rtos::TaskCoro run(JobContext& job) override {
        int jobs = 0;
        while (job.active()) {
          co_await job.consume(microseconds(10));
          if (++jobs >= 3) throw std::runtime_error("crash");
          co_await job.next_cycle();
        }
      }
    };
    return std::make_unique<Bomb>();
  });
  ComponentDescriptor d = component("bomb");
  d.bincode = "snap.Bomb";
  ASSERT_TRUE(world.drcr.register_component(std::move(d)).ok());

  AdaptationConfig restart;
  restart.poll_period = milliseconds(50);
  restart.policies = {
      {AdaptationTrigger::kQosRule, QosActionKind::kRestart, 1}};
  AdaptationManager manager(world.drcr, restart);
  QosRule rule;
  rule.detect_failure = true;
  manager.add_rule(rule);
  manager.start();
  world.engine.run_until(seconds(1));
  // The watchdog kept restarting it: several instances were created and the
  // component is ACTIVE (the latest incarnation, pre-crash) or mid-cycle.
  EXPECT_GT(instances, 3);
  EXPECT_EQ(world.drcr.state_of("bomb").value(), ComponentState::kActive);
  EXPECT_GT(manager.violations().size(), 2u);
}

}  // namespace
}  // namespace drt::drcom
