// Failure injection across the stack: throwing component bodies, factories
// that fail, init() exceptions, and recovery paths. A managed RT system must
// degrade loudly and locally, never silently or globally.
#include <gtest/gtest.h>

#include "drcom/adaptation.hpp"
#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// One-step QoS ladder: the old single-action config, spelled as policies.
AdaptationConfig one_step(SimDuration poll, QosActionKind action) {
  AdaptationConfig config;
  config.poll_period = poll;
  config.policies = {{AdaptationTrigger::kQosRule, action, 1}};
  return config;
}

/// Body that explodes after N jobs.
class Bomb : public RtComponent {
 public:
  explicit Bomb(int fuse) : fuse_(fuse) {}
  rtos::TaskCoro run(JobContext& job) override {
    int jobs = 0;
    while (job.active()) {
      co_await job.consume(microseconds(10));
      if (++jobs >= fuse_) throw std::runtime_error("boom after job " +
                                                    std::to_string(jobs));
      co_await job.next_cycle();
    }
  }

 private:
  int fuse_;
};

class Steady : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      if (auto* shm = job.out_shm("feed")) shm->write_i32(0, 1, job.now());
      co_await job.next_cycle();
    }
  }
};

ComponentDescriptor descriptor(std::string name, std::string bincode,
                               std::vector<std::string> outs = {}) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = std::move(bincode);
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.1;
  d.periodic = PeriodicSpec{1000.0, 0, 5};
  for (auto& out : outs) {
    d.ports.push_back({PortDirection::kOut, std::move(out),
                       PortInterface::kShm, rtos::DataType::kInteger, 2});
  }
  return d;
}

struct FailureFixture : public ::testing::Test {
  FailureFixture() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory(
        "fail.Bomb", [] { return std::make_unique<Bomb>(5); });
    drcr.factories().register_factory(
        "fail.Steady", [] { return std::make_unique<Steady>(); });
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
};

TEST_F(FailureFixture, BodyExceptionSurfacesInStatus) {
  ASSERT_TRUE(drcr.register_component(descriptor("bomb", "fail.Bomb")).ok());
  engine.run_until(milliseconds(20));
  const auto status = drcr.instance_of("bomb")->status();
  EXPECT_TRUE(status.failed);
  EXPECT_NE(status.failure.find("boom after job 5"), std::string::npos);
  EXPECT_EQ(status.task_state, rtos::TaskState::kFinished);
}

TEST_F(FailureFixture, FailureIsIsolatedFromOtherComponents) {
  ASSERT_TRUE(drcr.register_component(descriptor("bomb", "fail.Bomb")).ok());
  ASSERT_TRUE(
      drcr.register_component(descriptor("rock", "fail.Steady")).ok());
  engine.run_until(milliseconds(100));
  EXPECT_TRUE(drcr.instance_of("bomb")->status().failed);
  const auto rock_status = drcr.instance_of("rock")->status();
  EXPECT_FALSE(rock_status.failed);
  EXPECT_GT(rock_status.stats.activations, 90u);
}

TEST_F(FailureFixture, AdaptationDetectsBodyFailureOnce) {
  ASSERT_TRUE(drcr.register_component(descriptor("bomb", "fail.Bomb")).ok());
  AdaptationManager manager(drcr,
                            one_step(milliseconds(50), QosActionKind::kNotify));
  QosRule rule;
  rule.detect_failure = true;
  manager.add_rule(rule);
  manager.start();
  engine.run_until(seconds(1));
  // Exactly one violation despite ~20 polls after the crash.
  ASSERT_EQ(manager.violations().size(), 1u);
  EXPECT_NE(manager.violations()[0].rule_description.find("body failed"),
            std::string::npos);
}

TEST_F(FailureFixture, AdaptationDisableClearsFailedComponent) {
  ASSERT_TRUE(drcr.register_component(descriptor("bomb", "fail.Bomb")).ok());
  AdaptationManager manager(
      drcr, one_step(milliseconds(50), QosActionKind::kDisable));
  QosRule rule;
  rule.detect_failure = true;
  manager.add_rule(rule);
  manager.start();
  engine.run_until(milliseconds(500));
  EXPECT_EQ(drcr.state_of("bomb").value(), ComponentState::kDisabled);
  // The dead task and its ports are gone.
  EXPECT_EQ(kernel.find_task("bomb"), nullptr);
  // Re-enable redeploys a FRESH instance (restart-on-failure policy).
  ASSERT_TRUE(drcr.enable_component("bomb").ok());
  EXPECT_EQ(drcr.state_of("bomb").value(), ComponentState::kActive);
  EXPECT_FALSE(drcr.instance_of("bomb")->status().failed);
}

TEST_F(FailureFixture, InitExceptionFailsActivationCleanly) {
  class BadInit : public RtComponent {
   public:
    rtos::TaskCoro run(JobContext& job) override {
      while (job.active()) co_await job.next_cycle();
    }
    void init(JobContext&) override {
      throw std::runtime_error("init exploded");
    }
  };
  drcr.factories().register_factory(
      "fail.BadInit", [] { return std::make_unique<BadInit>(); });
  // init() runs inside the task-body factory during create_task; the
  // exception propagates out of activation as a rejection, not a crash.
  auto d = descriptor("badi", "fail.BadInit", {"bport"});
  EXPECT_NO_THROW({
    auto result = drcr.register_component(std::move(d));
    EXPECT_TRUE(result.ok());  // registration itself succeeds
  });
  EXPECT_NE(drcr.state_of("badi").value(), ComponentState::kActive);
  // Nothing leaked: the out-port was rolled back.
  EXPECT_EQ(kernel.shm_find("bport"), nullptr);
  EXPECT_EQ(kernel.mailbox_find("badi.cmd"), nullptr);
}

TEST_F(FailureFixture, NullFactoryProductIsARejection) {
  drcr.factories().register_factory("fail.Null",
                                    [] () -> std::unique_ptr<RtComponent> {
                                      return nullptr;
                                    });
  ASSERT_TRUE(drcr.register_component(descriptor("nullc", "fail.Null")).ok());
  EXPECT_EQ(drcr.state_of("nullc").value(), ComponentState::kUnsatisfied);
  EXPECT_FALSE(drcr.component_health("nullc")->reason.empty());
}

TEST_F(FailureFixture, FailedProviderStillCountsAsActiveUntilManaged) {
  // A crashed provider's ports remain in the kernel (its record is still
  // ACTIVE); dependents keep reading stale data until an adaptation policy
  // disables the provider — then the cascade happens. This codifies the
  // (documented) semantics.
  ASSERT_TRUE(
      drcr.register_component(descriptor("bomb", "fail.Bomb", {"feed"})).ok());
  ComponentDescriptor consumer = descriptor("cons", "fail.Steady");
  consumer.ports.push_back({PortDirection::kIn, "feed", PortInterface::kShm,
                            rtos::DataType::kInteger, 2});
  ASSERT_TRUE(drcr.register_component(std::move(consumer)).ok());
  engine.run_until(milliseconds(100));
  EXPECT_TRUE(drcr.instance_of("bomb")->status().failed);
  EXPECT_EQ(drcr.state_of("cons").value(), ComponentState::kActive);
  // Management steps in:
  ASSERT_TRUE(drcr.disable_component("bomb").ok());
  EXPECT_EQ(drcr.state_of("cons").value(), ComponentState::kUnsatisfied);
}

// ----------------------------------------------------------- kernel level

TEST(KernelFailure, ExceptionInFirstJobBeforeAnyAwait) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "insta", .type = rtos::TaskType::kAperiodic},
      [](rtos::TaskContext&) -> rtos::TaskCoro {
        throw std::logic_error("immediate");
        co_return;  // unreachable; makes this a coroutine
      });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  const rtos::Task* task = kernel.find_task(id.value());
  EXPECT_EQ(task->state, rtos::TaskState::kFinished);
  EXPECT_NE(task->error, nullptr);
}

TEST(KernelFailure, CpuStaysUsableAfterTaskCrash) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto bomb = kernel.create_task(
      rtos::TaskParams{.name = "bomb", .type = rtos::TaskType::kAperiodic,
                       .priority = 1},
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.consume(microseconds(100));
        throw std::runtime_error("crash");
      });
  SimTime finished = -1;
  auto survivor = kernel.create_task(
      rtos::TaskParams{.name = "surv", .type = rtos::TaskType::kAperiodic,
                       .priority = 5},
      [&](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.consume(microseconds(300));
        finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(bomb.value()).ok());
  ASSERT_TRUE(kernel.start_task(survivor.value()).ok());
  engine.run_until(milliseconds(1));
  // Survivor was preempted-adjacent to a crashing task and still completed:
  // 100us (bomb) + 300us (survivor).
  EXPECT_EQ(finished, microseconds(400));
}

}  // namespace
}  // namespace drt::drcom
