// osgi::Properties: case-insensitive keyed dictionary semantics.
#include <gtest/gtest.h>

#include "osgi/properties.hpp"

namespace drt::osgi {
namespace {

TEST(Properties, SetAndGetAllTypes) {
  Properties props;
  props.set("s", std::string("text"));
  props.set("i", std::int64_t{42});
  props.set("d", 2.5);
  props.set("b", true);
  props.set("v", std::vector<std::string>{"a", "b"});
  EXPECT_EQ(props.get_string("s").value(), "text");
  EXPECT_EQ(props.get_int("i").value(), 42);
  EXPECT_DOUBLE_EQ(props.get_double("d").value(), 2.5);
  EXPECT_TRUE(props.get_bool("b").value());
  ASSERT_NE(props.get("v"), nullptr);
  EXPECT_EQ(std::get<std::vector<std::string>>(*props.get("v")).size(), 2u);
  EXPECT_EQ(props.size(), 5u);
}

TEST(Properties, KeysCaseInsensitiveButPreserved) {
  Properties props;
  props.set("Component.Name", std::string("camera"));
  EXPECT_TRUE(props.contains("component.name"));
  EXPECT_TRUE(props.contains("COMPONENT.NAME"));
  EXPECT_EQ(props.get_string("component.NAME").value(), "camera");
  // Iteration exposes the original spelling.
  bool found = false;
  for (const auto& [key, entry] : props) {
    if (entry.original_key == "Component.Name") found = true;
  }
  EXPECT_TRUE(found);
  // Overwriting through a different casing replaces the value.
  props.set("component.name", std::string("other"));
  EXPECT_EQ(props.size(), 1u);
  EXPECT_EQ(props.get_string("Component.Name").value(), "other");
}

TEST(Properties, TypedGettersRejectWrongType) {
  Properties props;
  props.set("i", std::int64_t{42});
  EXPECT_FALSE(props.get_string("i").has_value());
  EXPECT_FALSE(props.get_bool("i").has_value());
  // Int is promotable to double (convenience used by resolvers).
  EXPECT_DOUBLE_EQ(props.get_double("i").value(), 42.0);
  props.set("d", 1.5);
  EXPECT_FALSE(props.get_int("d").has_value());
}

TEST(Properties, EraseAndMissing) {
  Properties props;
  props.set("k", std::int64_t{1});
  EXPECT_TRUE(props.erase("K"));
  EXPECT_FALSE(props.erase("k"));
  EXPECT_FALSE(props.contains("k"));
  EXPECT_EQ(props.get("k"), nullptr);
  EXPECT_TRUE(props.empty());
}

TEST(Properties, InitializerListConstruction) {
  Properties props{{"a", std::int64_t{1}}, {"b", std::string("x")}};
  EXPECT_EQ(props.size(), 2u);
  EXPECT_EQ(props.get_int("a").value(), 1);
}

TEST(Properties, ToStringIsDeterministic) {
  Properties props;
  props.set("b", std::int64_t{2});
  props.set("a", std::int64_t{1});
  EXPECT_EQ(props.to_string(), "{a=1, b=2}");
}

TEST(PropertyValue, ToStringRendersAllTypes) {
  EXPECT_EQ(to_string(PropertyValue{std::string("x")}), "x");
  EXPECT_EQ(to_string(PropertyValue{std::int64_t{-3}}), "-3");
  EXPECT_EQ(to_string(PropertyValue{true}), "true");
  EXPECT_EQ(to_string(PropertyValue{false}), "false");
  EXPECT_EQ(to_string(PropertyValue{std::vector<std::string>{"a", "b"}}),
            "[a, b]");
}

}  // namespace
}  // namespace drt::osgi
