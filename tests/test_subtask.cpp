// SubTask<T> sub-coroutines: value propagation, exception propagation,
// nesting, interaction with kernel awaiters and task deletion.
#include <gtest/gtest.h>

#include "rtos/kernel.hpp"
#include "rtos/subtask.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

TaskParams aperiodic(std::string name) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kAperiodic;
  return params;
}

TEST(SubTask, VoidSubtaskRunsInline) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::vector<int> order;
  auto sub = [&](TaskContext& ctx) -> SubTask<> {
    order.push_back(2);
    co_await ctx.consume(1'000);
    order.push_back(3);
  };
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        order.push_back(1);
        co_await sub(ctx);
        order.push_back(4);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SubTask, ValueSubtaskReturnsThroughAwait) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::string result;
  auto sub = [](TaskContext& ctx, int n) -> SubTask<std::string> {
    co_await ctx.consume(n * 100);
    co_return "value-" + std::to_string(n);
  };
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        result = co_await sub(ctx, 7);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(result, "value-7");
}

TEST(SubTask, TimeAdvancesAcrossNestedAwaits) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  SimTime after_inner = -1;
  SimTime after_outer = -1;
  auto inner = [](TaskContext& ctx) -> SubTask<> {
    co_await ctx.consume(microseconds(100));
    co_await ctx.sleep_for(microseconds(400));
  };
  auto middle = [&](TaskContext& ctx) -> SubTask<> {
    co_await inner(ctx);
    co_await ctx.consume(microseconds(100));
  };
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        co_await middle(ctx);
        after_inner = ctx.now();
        co_await ctx.consume(microseconds(100));
        after_outer = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(5));
  EXPECT_EQ(after_inner, microseconds(600));
  EXPECT_EQ(after_outer, microseconds(700));
}

TEST(SubTask, DeepNesting) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  int total = 0;
  // Recursive sub-coroutine chain, 32 deep, each consuming 10us.
  std::function<SubTask<int>(TaskContext&, int)> chain =
      [&chain](TaskContext& ctx, int depth) -> SubTask<int> {
    co_await ctx.consume(microseconds(10));
    if (depth == 0) co_return 0;
    co_return 1 + co_await chain(ctx, depth - 1);
  };
  SimTime finished = -1;
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        total = co_await chain(ctx, 32);
        finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(5));
  EXPECT_EQ(total, 32);
  EXPECT_EQ(finished, microseconds(330));  // 33 levels x 10us
}

TEST(SubTask, ExceptionPropagatesToOuterCoroutine) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  bool caught = false;
  auto sub = [](TaskContext& ctx) -> SubTask<> {
    co_await ctx.consume(1'000);
    throw std::runtime_error("inner bang");
  };
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        try {
          co_await sub(ctx);
        } catch (const std::runtime_error& e) {
          caught = std::string(e.what()) == "inner bang";
        }
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_TRUE(caught);
  EXPECT_EQ(kernel.find_task(id.value())->error, nullptr);  // handled
}

TEST(SubTask, UncaughtInnerExceptionBecomesTaskError) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto sub = [](TaskContext& ctx) -> SubTask<int> {
    co_await ctx.consume(1'000);
    throw std::runtime_error("unhandled");
  };
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        int v = co_await sub(ctx);
        (void)v;
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_NE(kernel.find_task(id.value())->error, nullptr);
}

TEST(SubTask, DeleteTaskWhileSuspendedInsideSubtaskRunsDestructors) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  int destroyed = 0;
  struct Guard {
    int* counter;
    ~Guard() { ++*counter; }
  };
  auto sub = [&](TaskContext& ctx) -> SubTask<> {
    Guard inner{&destroyed};
    co_await ctx.sleep_for(seconds(100));
  };
  auto id = kernel.create_task(
      aperiodic("t"), [&](TaskContext& ctx) -> TaskCoro {
        Guard outer{&destroyed};
        co_await sub(ctx);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_TRUE(kernel.delete_task(id.value()).ok());
  // Both coroutine frames (inner first) were destroyed.
  EXPECT_EQ(destroyed, 2);
}

TEST(SubTask, PreemptionInsideSubtaskResumesCorrectFrame) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  SimTime sub_finished = -1;
  auto sub = [&](TaskContext& ctx) -> SubTask<> {
    co_await ctx.consume(milliseconds(4));
    sub_finished = ctx.now();
  };
  auto low = kernel.create_task(
      TaskParams{.name = "low", .type = TaskType::kAperiodic, .priority = 5},
      [&](TaskContext& ctx) -> TaskCoro { co_await sub(ctx); });
  SimTime high_finished = -1;
  auto high = kernel.create_task(
      TaskParams{.name = "high", .type = TaskType::kAperiodic, .priority = 1},
      [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(1));
        high_finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(low.value()).ok());
  ASSERT_TRUE(kernel.start_task(high.value(), milliseconds(2)).ok());
  engine.run_until(milliseconds(10));
  EXPECT_EQ(high_finished, milliseconds(3));
  EXPECT_EQ(sub_finished, milliseconds(5));  // 4ms demand + 1ms preemption
}

}  // namespace
}  // namespace drt::rtos
