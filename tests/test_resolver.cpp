// Resolving-service policies: utilization budget, rate-monotonic bound,
// always-accept; admission and revocation behaviour.
#include <gtest/gtest.h>

#include "drcom/resolver.hpp"

namespace drt::drcom {
namespace {

ComponentDescriptor periodic_component(std::string name, double usage,
                                       CpuId cpu = 0, double hz = 100.0) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "test.Impl";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = PeriodicSpec{hz, cpu, 5};
  return d;
}

ComponentDescriptor aperiodic_component(std::string name, double usage = 0.0) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "test.Impl";
  d.type = rtos::TaskType::kAperiodic;
  d.cpu_usage = usage;
  return d;
}

SystemView view_of(const std::vector<const ComponentDescriptor*>& active,
                   std::size_t cpus = 2) {
  SystemView view;
  view.active = active;
  view.cpu_count = cpus;
  return view;
}

TEST(SystemView, DeclaredUtilizationSumsPerCpu) {
  const auto a = periodic_component("a", 0.3, 0);
  const auto b = periodic_component("b", 0.2, 0);
  const auto c = periodic_component("c", 0.4, 1);
  const auto view = view_of({&a, &b, &c});
  EXPECT_DOUBLE_EQ(view.declared_utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(view.declared_utilization(1), 0.4);
  EXPECT_DOUBLE_EQ(view.declared_utilization(7), 0.0);
  EXPECT_EQ(view.active_count_on(0), 2u);
}

TEST(UtilizationBudget, AdmitsWithinBudget) {
  UtilizationBudgetResolver resolver(0.9);
  const auto a = periodic_component("a", 0.5, 0);
  const auto candidate = periodic_component("new", 0.3, 0);
  EXPECT_TRUE(resolver.admit(candidate, view_of({&a})).ok());
}

TEST(UtilizationBudget, RejectsOverBudget) {
  UtilizationBudgetResolver resolver(0.9);
  const auto a = periodic_component("a", 0.7, 0);
  const auto candidate = periodic_component("new", 0.3, 0);
  auto result = resolver.admit(candidate, view_of({&a}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "drcom.admission_rejected");
}

TEST(UtilizationBudget, BudgetIsPerCpu) {
  UtilizationBudgetResolver resolver(0.9);
  const auto a = periodic_component("a", 0.7, 0);
  // Same usage but pinned to CPU 1: admitted.
  const auto candidate = periodic_component("new", 0.3, 1);
  EXPECT_TRUE(resolver.admit(candidate, view_of({&a})).ok());
}

TEST(UtilizationBudget, ExactBoundaryAdmitted) {
  UtilizationBudgetResolver resolver(1.0);
  const auto a = periodic_component("a", 0.6, 0);
  const auto candidate = periodic_component("new", 0.4, 0);
  EXPECT_TRUE(resolver.admit(candidate, view_of({&a})).ok());
}

TEST(UtilizationBudget, RevokeShedsNewestFirst) {
  UtilizationBudgetResolver resolver(0.9);
  // Activation order: a (0.5), b (0.3), c (0.3) -> total 1.1 > 0.9.
  const auto a = periodic_component("a", 0.5, 0);
  const auto b = periodic_component("b", 0.3, 0);
  const auto c = periodic_component("c", 0.3, 0);
  const auto revoked = resolver.revoke(view_of({&a, &b, &c}));
  ASSERT_EQ(revoked.size(), 1u);
  EXPECT_EQ(revoked[0], "c");  // newest first, and shedding c suffices
}

TEST(UtilizationBudget, RevokeNothingWhenWithinBudget) {
  UtilizationBudgetResolver resolver(0.9);
  const auto a = periodic_component("a", 0.5, 0);
  EXPECT_TRUE(resolver.revoke(view_of({&a})).empty());
}

TEST(UtilizationBudget, BudgetShrinkRevokesEnough) {
  UtilizationBudgetResolver resolver(0.9);
  const auto a = periodic_component("a", 0.5, 0);
  const auto b = periodic_component("b", 0.3, 0);
  const auto c = periodic_component("c", 0.1, 0);
  resolver.set_budget(0.45);
  const auto revoked = resolver.revoke(view_of({&a, &b, &c}));
  // Must shed c (0.1) and b (0.3) to get to 0.5... still over; sheds all but
  // keeps shedding newest-first until within: c, b, then a? 0.5 > 0.45 so a
  // too.
  EXPECT_EQ(revoked.size(), 3u);
  EXPECT_EQ(revoked[0], "c");
  EXPECT_EQ(revoked[1], "b");
  EXPECT_EQ(revoked[2], "a");
}

TEST(RateMonotonic, BoundValues) {
  EXPECT_DOUBLE_EQ(RateMonotonicResolver::bound_for(1), 1.0);
  EXPECT_NEAR(RateMonotonicResolver::bound_for(2), 0.8284, 1e-3);
  EXPECT_NEAR(RateMonotonicResolver::bound_for(3), 0.7798, 1e-3);
  // ln 2 asymptote.
  EXPECT_NEAR(RateMonotonicResolver::bound_for(1000), 0.6934, 1e-3);
}

TEST(RateMonotonic, SingleTaskUpToFullUtilization) {
  RateMonotonicResolver resolver;
  const auto candidate = periodic_component("solo", 0.99, 0);
  EXPECT_TRUE(resolver.admit(candidate, view_of({})).ok());
}

TEST(RateMonotonic, TwoTasksBoundAt828) {
  RateMonotonicResolver resolver;
  const auto a = periodic_component("a", 0.5, 0);
  const auto ok_candidate = periodic_component("ok", 0.3, 0);    // 0.8 < .828
  const auto bad_candidate = periodic_component("bad", 0.4, 0);  // 0.9 > .828
  EXPECT_TRUE(resolver.admit(ok_candidate, view_of({&a})).ok());
  EXPECT_FALSE(resolver.admit(bad_candidate, view_of({&a})).ok());
}

TEST(RateMonotonic, AperiodicTasksIgnored) {
  RateMonotonicResolver resolver;
  const auto a = periodic_component("a", 0.8, 0);
  const auto candidate = aperiodic_component("evt", 0.5);
  EXPECT_TRUE(resolver.admit(candidate, view_of({&a})).ok());
}

TEST(RateMonotonic, OnlySameCpuCounts) {
  RateMonotonicResolver resolver;
  const auto a = periodic_component("a", 0.5, 1);
  const auto candidate = periodic_component("new", 0.8, 0);
  EXPECT_TRUE(resolver.admit(candidate, view_of({&a})).ok());
}

TEST(AlwaysAccept, AcceptsAnything) {
  AlwaysAcceptResolver resolver;
  const auto monster = periodic_component("mon", 1.0, 0);
  const auto a = periodic_component("a", 1.0, 0);
  EXPECT_TRUE(resolver.admit(monster, view_of({&a})).ok());
  EXPECT_TRUE(resolver.revoke(view_of({&a})).empty());
  EXPECT_EQ(resolver.name(), "always-accept");
}

}  // namespace
}  // namespace drt::drcom
