// Scheduler-order invariants that the O(1) ready queues (priority bitmap +
// intrusive per-priority FIFOs) and the indexed event heap must preserve.
// These orderings are part of the deterministic contract: every bench table
// replays bit-identically only because (a) events fire in (time,
// insertion-order), (b) equal-priority tasks rotate round-robin in FIFO
// order, and (c) a preempted task re-enters ahead of FIFO arrivals
// (front_seq semantics).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "rtos/kernel.hpp"
#include "rtos/sim_engine.hpp"

namespace drt::rtos {
namespace {

using Marks = std::vector<std::pair<std::string, SimTime>>;

KernelConfig quiet_config() {
  KernelConfig config;
  config.cpus = 1;
  config.context_switch_ns = 0;  // exact virtual timestamps in assertions
  return config;
}

TaskParams aperiodic(std::string name, int priority,
                     SimDuration rr_quantum = 0) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kAperiodic;
  params.priority = priority;
  params.cpu = 0;
  params.rr_quantum = rr_quantum;
  return params;
}

/// Creates + starts a task that burns `demand` ns once, then records
/// (name, completion time).
TaskId spawn_burner(RtKernel& kernel, Marks& marks, TaskParams params,
                    SimDuration demand, SimTime start_at = -1) {
  auto created = kernel.create_task(
      params, [&marks, demand](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(demand);
        marks.emplace_back(ctx.task().params.name, ctx.now());
      });
  EXPECT_TRUE(created.ok());
  const TaskId id = created.value_or(0);
  EXPECT_TRUE(kernel.start_task(id, start_at).ok());
  return id;
}

// ---------------------------------------------------------------- kernel --

TEST(SchedOrder, SamePriorityRoundRobinRotatesInFifoOrder) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // Three equal-priority tasks, 2 ms demand each, 1 ms quantum: pure
  // rotation A,B,C,A,B,C with 1 ms slices, so completions land at 4/5/6 ms
  // in arrival order. Any ready-queue ordering bug scrambles this.
  const SimDuration quantum = milliseconds(1);
  spawn_burner(kernel, marks, aperiodic("A", 5, quantum), milliseconds(2));
  spawn_burner(kernel, marks, aperiodic("B", 5, quantum), milliseconds(2));
  spawn_burner(kernel, marks, aperiodic("C", 5, quantum), milliseconds(2));
  engine.run_until(milliseconds(20));
  const Marks expected = {{"A", milliseconds(4)},
                          {"B", milliseconds(5)},
                          {"C", milliseconds(6)}};
  EXPECT_EQ(marks, expected);
  // B and C really rotated (one SliceRotated each), in arrival order.
  EXPECT_EQ(kernel.find_task("B"), nullptr);  // finished frees the name
}

TEST(SchedOrder, PreemptedTaskReentersAheadOfFifoArrivals) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  Marks marks;
  // L1 runs first with L2 queued behind it; H preempts L1 at t=1ms. On H's
  // completion L1 must resume BEFORE L2 (front-of-class re-entry): being
  // preempted must not cost L1 its round-robin turn.
  const TaskId l1 =
      spawn_burner(kernel, marks, aperiodic("L1", 5), milliseconds(4));
  spawn_burner(kernel, marks, aperiodic("L2", 5), milliseconds(1));
  spawn_burner(kernel, marks, aperiodic("H", 1), milliseconds(1),
               milliseconds(1));
  engine.run_until(milliseconds(20));
  const Marks expected = {{"H", milliseconds(2)},
                          {"L1", milliseconds(5)},
                          {"L2", milliseconds(6)}};
  EXPECT_EQ(marks, expected);
  EXPECT_EQ(kernel.find_task(l1)->stats.preemptions, 1u);
}

TEST(SchedOrder, PriorityOutOfRangeIsRejected) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto body = [](TaskContext&) -> TaskCoro { co_return; };
  EXPECT_FALSE(kernel.create_task(aperiodic("neg", -1), body).ok());
  EXPECT_FALSE(
      kernel.create_task(aperiodic("big", kMaxPriority + 1), body).ok());
  EXPECT_TRUE(kernel.create_task(aperiodic("max", kMaxPriority), body).ok());
}

// ---------------------------------------------------------------- engine --

TEST(SchedOrder, SameTimeEventsFireInInsertionOrderAroundCancellation) {
  SimEngine engine;
  std::vector<int> order;
  (void)engine.schedule_at(50, [&] { order.push_back(1); });
  const EventId second = engine.schedule_at(50, [&] { order.push_back(2); });
  (void)engine.schedule_at(50, [&] { order.push_back(3); });
  engine.cancel(second);
  (void)engine.schedule_at(50, [&] { order.push_back(4); });
  engine.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

TEST(SchedOrder, CancelRacingWithSameTimeFireIsHonoured) {
  SimEngine engine;
  bool victim_fired = false;
  EventId victim = kInvalidEvent;
  // First event of the t=10 batch cancels the second: the cancellation must
  // win even though the victim is already due.
  (void)engine.schedule_at(10, [&] { engine.cancel(victim); });
  victim = engine.schedule_at(10, [&] { victim_fired = true; });
  engine.run_to_completion();
  EXPECT_FALSE(victim_fired);
  EXPECT_TRUE(engine.idle());
}

TEST(SchedOrder, StaleCancelAfterSlotReuseIsNoOp) {
  SimEngine engine;
  int fired = 0;
  const EventId stale = engine.schedule_at(10, [&] { ++fired; });
  engine.run_to_completion();
  EXPECT_EQ(fired, 1);
  // The new event may reuse the fired event's internal slot; the stale id
  // must not be able to kill it (generation check).
  (void)engine.schedule_at(20, [&] { ++fired; });
  engine.cancel(stale);
  engine.cancel(stale);  // double stale cancel: still harmless
  engine.run_to_completion();
  EXPECT_EQ(fired, 2);
}

TEST(SchedOrder, CancelledSlotReuseKeepsOrderingDeterministic) {
  SimEngine engine;
  std::vector<int> order;
  const EventId a = engine.schedule_at(30, [&] { order.push_back(1); });
  engine.cancel(a);
  // Reuses a's slot but must sort by its own (time, insertion) key.
  (void)engine.schedule_at(20, [&] { order.push_back(2); });
  (void)engine.schedule_at(25, [&] { order.push_back(3); });
  engine.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(SchedOrder, SchedulePastClampsToNow) {
  SimEngine engine;
  engine.run_until(100);
  ASSERT_EQ(engine.now(), 100);
  // Defined behaviour (documented in sim_engine.hpp): past times clamp to
  // now() — no assert, no time travel.
  SimTime seen = -1;
  (void)engine.schedule_at(40, [&] { seen = engine.now(); });
  engine.run_to_completion();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(engine.now(), 100);
}

TEST(SchedOrder, PastEventOrdersAfterEventsAlreadyDue) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(100, [&] {
    order.push_back(1);
    // now() == 100; both fire at 100 — the clamped one was inserted later,
    // so it fires later.
    engine.schedule_at(100, [&] { order.push_back(2); });
    engine.schedule_at(10, [&] { order.push_back(3); });
  });
  engine.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace drt::rtos
