// Framework/bundle lifecycle: install, resolve (package wiring), start/stop,
// update, uninstall, refresh, events — the OSGi continuous-deployment verbs
// the paper builds on.
#include <gtest/gtest.h>

#include "osgi/framework.hpp"

namespace drt::osgi {
namespace {

Manifest simple_manifest(std::string name, Version version = Version(1, 0, 0)) {
  Manifest manifest;
  manifest.set_symbolic_name(std::move(name)).set_version(version);
  return manifest;
}

/// Test activator that logs transitions into a shared vector.
class LoggingActivator : public BundleActivator {
 public:
  LoggingActivator(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(&log) {}
  void start(BundleContext&) override { log_->push_back(name_ + ":start"); }
  void stop(BundleContext&) override { log_->push_back(name_ + ":stop"); }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

BundleDefinition logging_bundle(std::string name,
                                std::vector<std::string>& log) {
  BundleDefinition definition;
  definition.manifest = simple_manifest(name);
  definition.activator_factory = [name, &log] {
    return std::make_unique<LoggingActivator>(name, log);
  };
  return definition;
}

TEST(Framework, InstallStartStopLifecycle) {
  Framework framework;
  std::vector<std::string> log;
  auto id = framework.install(logging_bundle("app", log));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(),
            BundleState::kInstalled);
  ASSERT_TRUE(framework.start(id.value()).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kActive);
  ASSERT_TRUE(framework.stop(id.value()).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kResolved);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "app:start");
  EXPECT_EQ(log[1], "app:stop");
}

TEST(Framework, DuplicateSymbolicNameAndVersionRejected) {
  Framework framework;
  BundleDefinition a;
  a.manifest = simple_manifest("dup");
  ASSERT_TRUE(framework.install(std::move(a)).ok());
  BundleDefinition b;
  b.manifest = simple_manifest("dup");
  auto second = framework.install(std::move(b));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, "osgi.duplicate_bundle");
  // Same name, different version is fine.
  BundleDefinition c;
  c.manifest = simple_manifest("dup", Version(2, 0, 0));
  EXPECT_TRUE(framework.install(std::move(c)).ok());
}

TEST(Framework, ResolveWiresImportsToBestExporter) {
  Framework framework;
  BundleDefinition exporter_old;
  exporter_old.manifest = simple_manifest("exp.old");
  exporter_old.manifest.add_export({"com.api", Version(1, 1, 0)});
  BundleDefinition exporter_new;
  exporter_new.manifest = simple_manifest("exp.new");
  exporter_new.manifest.add_export({"com.api", Version(1, 5, 0)});
  BundleDefinition importer;
  importer.manifest = simple_manifest("imp");
  importer.manifest.add_import(
      {"com.api", VersionRange::parse("[1.0,2.0)").value(), false});
  auto old_id = framework.install(std::move(exporter_old));
  auto new_id = framework.install(std::move(exporter_new));
  auto imp_id = framework.install(std::move(importer));
  ASSERT_TRUE(framework.resolve(imp_id.value()).ok());
  const Bundle* bundle = framework.get_bundle(imp_id.value());
  ASSERT_EQ(bundle->wires().size(), 1u);
  EXPECT_EQ(bundle->wires()[0].exporter, new_id.value());  // highest version
  EXPECT_EQ(bundle->wires()[0].version, Version(1, 5, 0));
  // Providers were resolved transitively.
  EXPECT_EQ(framework.get_bundle(new_id.value())->state(),
            BundleState::kResolved);
  EXPECT_EQ(framework.get_bundle(old_id.value())->state(),
            BundleState::kInstalled);
}

TEST(Framework, UnresolvableImportFailsStart) {
  Framework framework;
  BundleDefinition importer;
  importer.manifest = simple_manifest("imp");
  importer.manifest.add_import({"no.such.pkg", VersionRange{}, false});
  auto id = framework.install(std::move(importer));
  auto started = framework.start(id.value());
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.error().code, "osgi.unresolved");
  EXPECT_EQ(framework.get_bundle(id.value())->state(),
            BundleState::kInstalled);
}

TEST(Framework, OptionalImportResolvesWithoutProvider) {
  Framework framework;
  BundleDefinition importer;
  importer.manifest = simple_manifest("imp");
  importer.manifest.add_import({"maybe.pkg", VersionRange{}, true});
  auto id = framework.install(std::move(importer));
  EXPECT_TRUE(framework.start(id.value()).ok());
}

TEST(Framework, SelfExportSatisfiesOwnImport) {
  Framework framework;
  BundleDefinition bundle;
  bundle.manifest = simple_manifest("self");
  bundle.manifest.add_export({"self.pkg", Version(1, 0, 0)});
  bundle.manifest.add_import({"self.pkg", VersionRange{}, false});
  auto id = framework.install(std::move(bundle));
  EXPECT_TRUE(framework.resolve(id.value()).ok());
}

TEST(Framework, ActivatorStartExceptionRollsBack) {
  Framework framework;
  class Exploding : public BundleActivator {
   public:
    void start(BundleContext&) override {
      throw std::runtime_error("start failed");
    }
    void stop(BundleContext&) override {}
  };
  BundleDefinition definition;
  definition.manifest = simple_manifest("boom");
  definition.activator_factory = [] { return std::make_unique<Exploding>(); };
  auto id = framework.install(std::move(definition));
  std::vector<FrameworkEvent> errors;
  framework.add_framework_listener([&](const FrameworkEvent& event) {
    if (event.type == FrameworkEventType::kError) errors.push_back(event);
  });
  auto started = framework.start(id.value());
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.error().code, "osgi.activator_failed");
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kResolved);
  EXPECT_EQ(errors.size(), 1u);
}

TEST(Framework, StopUnregistersForgottenServices) {
  Framework framework;
  class Publisher : public BundleActivator {
   public:
    void start(BundleContext& context) override {
      context.register_service("app.S", std::make_shared<int>(42));
      // deliberately never unregistered
    }
    void stop(BundleContext&) override {}
  };
  BundleDefinition definition;
  definition.manifest = simple_manifest("pub");
  definition.activator_factory = [] { return std::make_unique<Publisher>(); };
  auto id = framework.install(std::move(definition));
  ASSERT_TRUE(framework.start(id.value()).ok());
  EXPECT_TRUE(framework.registry().get_reference("app.S").has_value());
  ASSERT_TRUE(framework.stop(id.value()).ok());
  EXPECT_FALSE(framework.registry().get_reference("app.S").has_value());
}

TEST(Framework, UpdateSwapsDefinitionAndRestarts) {
  // log must outlive framework: the bundle stays ACTIVE and its activator
  // logs once more when the framework destructor stops it.
  std::vector<std::string> log;
  Framework framework;
  auto id = framework.install(logging_bundle("v1", log));
  ASSERT_TRUE(framework.start(id.value()).ok());
  ASSERT_TRUE(framework.update(id.value(), logging_bundle("v2", log)).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kActive);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "v1:start");
  EXPECT_EQ(log[1], "v1:stop");
  EXPECT_EQ(log[2], "v2:start");
  EXPECT_EQ(framework.get_bundle(id.value())->symbolic_name(), "v2");
}

TEST(Framework, UpdateOfStoppedBundleStaysStopped) {
  Framework framework;
  std::vector<std::string> log;
  auto id = framework.install(logging_bundle("v1", log));
  ASSERT_TRUE(framework.update(id.value(), logging_bundle("v2", log)).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(),
            BundleState::kInstalled);
  EXPECT_TRUE(log.empty());
}

TEST(Framework, UninstallStopsAndRemoves) {
  Framework framework;
  std::vector<std::string> log;
  auto id = framework.install(logging_bundle("gone", log));
  ASSERT_TRUE(framework.start(id.value()).ok());
  ASSERT_TRUE(framework.uninstall(id.value()).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(),
            BundleState::kUninstalled);
  EXPECT_EQ(log.back(), "gone:stop");
  EXPECT_EQ(framework.find_bundle("gone"), nullptr);
  EXPECT_FALSE(framework.uninstall(id.value()).ok());  // already gone
  EXPECT_FALSE(framework.start(id.value()).ok());
}

TEST(Framework, BundleEventsInOrder) {
  Framework framework;
  std::vector<std::string> events;
  framework.add_bundle_listener([&](const BundleEvent& event) {
    events.push_back(std::string(to_string(event.type)));
  });
  std::vector<std::string> log;
  auto id = framework.install(logging_bundle("evt", log));
  ASSERT_TRUE(framework.start(id.value()).ok());
  ASSERT_TRUE(framework.stop(id.value()).ok());
  ASSERT_TRUE(framework.uninstall(id.value()).ok());
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0], "INSTALLED");
  EXPECT_EQ(events[1], "RESOLVED");
  EXPECT_EQ(events[2], "STARTED");
  EXPECT_EQ(events[3], "STOPPED");
  EXPECT_EQ(events[4], "UNINSTALLED");
}

TEST(Framework, RefreshRewiresAfterUninstall) {
  Framework framework;
  BundleDefinition exporter;
  exporter.manifest = simple_manifest("exp");
  exporter.manifest.add_export({"api", Version(1, 0, 0)});
  BundleDefinition importer;
  importer.manifest = simple_manifest("imp");
  importer.manifest.add_import({"api", VersionRange{}, false});
  auto exp_id = framework.install(std::move(exporter));
  auto imp_id = framework.install(std::move(importer));
  ASSERT_TRUE(framework.resolve(imp_id.value()).ok());
  // Exporter goes away; stale wire survives until refresh (OSGi rule).
  ASSERT_TRUE(framework.uninstall(exp_id.value()).ok());
  EXPECT_EQ(framework.get_bundle(imp_id.value())->state(),
            BundleState::kResolved);
  framework.refresh();
  EXPECT_EQ(framework.get_bundle(imp_id.value())->state(),
            BundleState::kInstalled);  // unresolvable now
}

TEST(Framework, SystemContextBelongsToBundleZero) {
  Framework framework;
  EXPECT_EQ(framework.system_context().bundle_id(), 0u);
  auto registration = framework.system_context().register_service(
      "sys.S", std::make_shared<int>(1));
  EXPECT_EQ(registration.reference().owner_bundle(), 0u);
}

TEST(Framework, DestructorStopsActiveBundlesInReverseOrder) {
  std::vector<std::string> log;
  {
    Framework framework;
    auto a = framework.install(logging_bundle("a", log));
    auto b = framework.install(logging_bundle("b", log));
    ASSERT_TRUE(framework.start(a.value()).ok());
    ASSERT_TRUE(framework.start(b.value()).ok());
  }
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[2], "b:stop");
  EXPECT_EQ(log[3], "a:stop");
}

TEST(Framework, BundleResourcesAccessible) {
  Framework framework;
  BundleDefinition definition;
  definition.manifest = simple_manifest("res");
  definition.resources["DRT-INF/a.xml"] = "<drt:component/>";
  auto id = framework.install(std::move(definition));
  const Bundle* bundle = framework.get_bundle(id.value());
  EXPECT_EQ(bundle->resource("DRT-INF/a.xml").value(), "<drt:component/>");
  EXPECT_FALSE(bundle->resource("missing").has_value());
}

}  // namespace
}  // namespace drt::osgi
