// Incremental admission must be an invisible optimisation: a DRCR running
// with ContractCache-backed views and memoized RTA (incremental_admission =
// true, the default) must take EXACTLY the decisions of the cache-less
// per-candidate from-scratch DRCR (incremental_admission = false, the seed
// behaviour kept in-binary as the reference).
//
// The differential property test drives two such DRCRs through the same
// randomized lifecycle scripts — register/unregister, enable/disable,
// budget shrink, internal-resolver swaps — and after every operation
// compares component states, rejection reasons and per-CPU utilization
// bit-for-bit. ContractCache itself and the SystemView overlay get direct
// unit coverage below.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

class IdleComponent : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) co_await job.next_cycle();
  }
};

// ------------------------------------------------- ContractCache unit ----

ComponentDescriptor periodic_component(std::string name, double usage,
                                       CpuId cpu, double hz, int priority) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "incr.X";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = PeriodicSpec{hz, cpu, priority};
  return d;
}

ComponentDescriptor aperiodic_component(std::string name, double usage,
                                        CpuId cpu) {
  ComponentDescriptor d = periodic_component(std::move(name), usage, cpu,
                                             100.0, 5);
  d.type = rtos::TaskType::kAperiodic;
  d.periodic.reset();  // aperiodic components always land on CPU 0
  return d;
}

TEST(ContractCache, ActivateExtendsAndDeactivateRefolds) {
  ContractCache cache(2);
  const auto a = periodic_component("a", 0.3, 0, 100.0, 1);
  const auto b = aperiodic_component("b", 0.2, 0);
  const auto c = periodic_component("c", 0.4, 0, 200.0, 2);
  cache.on_activate(a);
  cache.on_activate(b);
  cache.on_activate(c);
  EXPECT_EQ(cache.active_count_on(0), 3u);
  EXPECT_EQ(cache.recurring_count_on(0), 2u);
  // Bit-identical to the left-fold over activation order.
  EXPECT_EQ(cache.declared_utilization(0), (0.3 + 0.2) + 0.4);
  EXPECT_EQ(cache.recurring_utilization(0), 0.3 + 0.4);
  EXPECT_EQ(cache.active().size(), 3u);
  EXPECT_EQ(cache.active()[0], &a);
  EXPECT_EQ(cache.active()[2], &c);

  const auto gen_before = cache.generation(0);
  cache.on_deactivate(b);
  EXPECT_GT(cache.generation(0), gen_before);
  EXPECT_EQ(cache.active_count_on(0), 2u);
  // Removal re-folds the survivors (a then c) rather than subtracting.
  EXPECT_EQ(cache.declared_utilization(0), 0.3 + 0.4);
  EXPECT_EQ(cache.active_on(0).size(), 2u);
  EXPECT_EQ(cache.active_on(0)[0], &a);
  EXPECT_EQ(cache.active_on(0)[1], &c);
}

TEST(ContractCache, RecurringMapIteratesPriorityThenActivationOrder) {
  ContractCache cache(1);
  const auto lo = periodic_component("lo", 0.1, 0, 100.0, 9);
  const auto hi = periodic_component("hi", 0.1, 0, 100.0, 1);
  const auto mid1 = periodic_component("mid1", 0.1, 0, 100.0, 5);
  const auto mid2 = periodic_component("mid2", 0.1, 0, 100.0, 5);
  cache.on_activate(lo);
  cache.on_activate(mid2);
  cache.on_activate(hi);
  cache.on_activate(mid1);
  std::vector<const ComponentDescriptor*> order;
  for (const auto& [key, entry] : cache.recurring_by_priority(0)) {
    order.push_back(entry.descriptor);
  }
  // Highest priority (lowest number) first; ties by activation order.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], &hi);
  EXPECT_EQ(order[1], &mid2);
  EXPECT_EQ(order[2], &mid1);
  EXPECT_EQ(order[3], &lo);
}

TEST(ContractCache, TracksCpusBeyondInitialCount) {
  ContractCache cache(1);
  const auto far = periodic_component("far", 0.5, 5, 100.0, 3);
  cache.on_activate(far);
  EXPECT_EQ(cache.active_count_on(5), 1u);
  EXPECT_EQ(cache.declared_utilization(5), 0.5);
  EXPECT_EQ(cache.declared_utilization(3), 0.0);
}

// ------------------------------------------------ SystemView overlay ----

TEST(SystemViewOverlay, CachedAccessorsMatchScanningFallback) {
  ContractCache cache(2);
  const auto a = periodic_component("a", 0.3, 0, 100.0, 1);
  const auto b = periodic_component("b", 0.25, 1, 100.0, 2);
  cache.on_activate(a);
  cache.on_activate(b);

  SystemView cached;
  cached.active = cache.active();
  cached.cpu_count = 2;
  cached.cache = &cache;
  cached.id = 1;

  SystemView scanned;  // hand-built, seed fallback path
  scanned.active = cache.active();
  scanned.cpu_count = 2;

  const auto c = periodic_component("c", 0.2, 0, 250.0, 3);
  cached.admit_locally(c);
  scanned.active.push_back(&c);

  for (CpuId cpu = 0; cpu < 2; ++cpu) {
    EXPECT_EQ(cached.declared_utilization(cpu),
              scanned.declared_utilization(cpu));
    EXPECT_EQ(cached.recurring_utilization_on(cpu),
              scanned.recurring_utilization_on(cpu));
    EXPECT_EQ(cached.active_count_on(cpu), scanned.active_count_on(cpu));
    EXPECT_EQ(cached.recurring_count_on(cpu), scanned.recurring_count_on(cpu));
  }
  EXPECT_EQ(cached.active.size(), 3u);  // admit_locally also extends `active`

  // Reverse iteration visits the locally admitted candidate first.
  std::vector<const ComponentDescriptor*> reverse;
  cached.for_each_active_on_reverse(
      0, [&](const ComponentDescriptor& d) { reverse.push_back(&d); });
  ASSERT_EQ(reverse.size(), 2u);
  EXPECT_EQ(reverse[0], &c);
  EXPECT_EQ(reverse[1], &a);
}

// ------------------------------------------- differential property test --

/// Both worlds share one scripted op sequence; `World` owns a full stack.
struct World {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;

  explicit World(bool incremental)
      : kernel(engine, quiet_config(2)),
        drcr(framework, kernel, make_config(incremental)) {
    drcr.factories().register_factory(
        "incr.X", [] { return std::make_unique<IdleComponent>(); });
  }

  static DrcrConfig make_config(bool incremental) {
    DrcrConfig config;
    config.cpu_budget = 0.9;
    config.incremental_admission = incremental;
    return config;
  }
};

ComponentDescriptor random_descriptor(std::mt19937_64& rng,
                                      const std::string& name) {
  // Bounded parameter pools: two-decimal usages, period ratios within 10x,
  // so the RTA converges in a handful of iterations in both worlds.
  static const double kUsages[] = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35};
  static const double kRates[] = {100.0, 200.0, 250.0, 500.0, 1000.0};
  ComponentDescriptor d;
  d.name = name;
  d.bincode = "incr.X";
  d.cpu_usage = kUsages[rng() % std::size(kUsages)];
  d.enabled = rng() % 5 != 0;  // 20% start disabled
  const CpuId cpu = static_cast<CpuId>(rng() % 2);
  const int priority = static_cast<int>(rng() % 20) + 1;
  const auto kind = rng() % 10;
  if (kind < 7) {
    d.type = rtos::TaskType::kPeriodic;
    d.periodic =
        PeriodicSpec{kRates[rng() % std::size(kRates)], cpu, priority};
    if (rng() % 5 == 0) {
      // Sometimes provide a mailbox other components can consume.
      PortSpec out;
      out.direction = PortDirection::kOut;
      out.name = "m" + std::to_string(rng() % 3);
      out.interface = PortInterface::kMailbox;
      out.size = 4;
      d.ports.push_back(out);
    }
  } else if (kind < 9) {
    d.type = rtos::TaskType::kSporadic;
    PortSpec trigger;
    trigger.direction = PortDirection::kIn;
    trigger.name = "m" + std::to_string(rng() % 3);
    trigger.interface = PortInterface::kMailbox;
    trigger.size = 4;
    d.ports.push_back(trigger);
    d.sporadic = SporadicSpec{microseconds(1'000 + 500 * (rng() % 4)), cpu,
                              priority, trigger.name};
  } else {
    d.type = rtos::TaskType::kAperiodic;
  }
  return d;
}

void expect_identical(World& incremental, World& reference,
                      const std::vector<std::string>& pool, int step) {
  ASSERT_EQ(incremental.drcr.component_names(), reference.drcr.component_names())
      << "step " << step;
  EXPECT_EQ(incremental.drcr.active_count(), reference.drcr.active_count())
      << "step " << step;
  for (const std::string& name : pool) {
    EXPECT_EQ(incremental.drcr.state_of(name), reference.drcr.state_of(name))
        << "step " << step << " component " << name;
    const auto inc_health = incremental.drcr.component_health(name);
    const auto ref_health = reference.drcr.component_health(name);
    ASSERT_EQ(inc_health.has_value(), ref_health.has_value())
        << "step " << step << " component " << name;
    if (!inc_health.has_value()) continue;
    EXPECT_EQ(inc_health->reason, ref_health->reason)
        << "step " << step << " component " << name;
    EXPECT_EQ(inc_health->last_error, ref_health->last_error)
        << "step " << step << " component " << name;
  }
  // Utilization must agree BIT-FOR-BIT: both sides are activation-ordered
  // left-folds, one cached, one scanned.
  const SystemView a = incremental.drcr.system_view();
  const SystemView b = reference.drcr.system_view();
  for (CpuId cpu = 0; cpu < 2; ++cpu) {
    EXPECT_EQ(a.declared_utilization(cpu), b.declared_utilization(cpu))
        << "step " << step << " cpu " << cpu;
    EXPECT_EQ(a.recurring_utilization_on(cpu), b.recurring_utilization_on(cpu))
        << "step " << step << " cpu " << cpu;
    EXPECT_EQ(a.active_count_on(cpu), b.active_count_on(cpu))
        << "step " << step << " cpu " << cpu;
  }
  // And the incremental world's cache must equal a recompute from records.
  const ContractCache& cache = incremental.drcr.contract_cache();
  std::size_t active = 0;
  for (const std::string& name : incremental.drcr.component_names()) {
    if (incremental.drcr.state_of(name) == ComponentState::kActive) ++active;
  }
  EXPECT_EQ(cache.active().size(), active) << "step " << step;
}

void swap_resolver(World& world, std::uint64_t which) {
  switch (which % 3) {
    case 0:
      world.drcr.set_internal_resolver(
          std::make_unique<UtilizationBudgetResolver>(0.9));
      break;
    case 1:
      world.drcr.set_internal_resolver(
          std::make_unique<RateMonotonicResolver>());
      break;
    default:
      world.drcr.set_internal_resolver(
          std::make_unique<ResponseTimeResolver>());
      break;
  }
}

TEST(IncrementalDifferential, RandomLifecycleScriptsTakeIdenticalDecisions) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
    World incremental(true);
    World reference(false);
    const std::vector<std::string> pool = {"c0", "c1", "c2", "c3", "c4",
                                           "c5", "c6", "c7", "c8", "c9"};
    for (int step = 0; step < 120; ++step) {
      const std::string& name = pool[rng() % pool.size()];
      const bool known = incremental.drcr.state_of(name).has_value();
      const auto op = rng() % 12;
      if (op < 5) {
        if (!known) {
          // Both worlds must receive the SAME descriptor; draw it once.
          const ComponentDescriptor d = random_descriptor(rng, name);
          const auto r1 = incremental.drcr.register_component(d);
          const auto r2 = reference.drcr.register_component(d);
          ASSERT_EQ(r1.ok(), r2.ok()) << "step " << step;
        }
      } else if (op < 7) {
        if (known) {
          (void)incremental.drcr.unregister_component(name);
          (void)reference.drcr.unregister_component(name);
        }
      } else if (op < 9) {
        if (known) {
          (void)incremental.drcr.enable_component(name);
          (void)reference.drcr.enable_component(name);
        }
      } else if (op < 10) {
        if (known) {
          (void)incremental.drcr.disable_component(name);
          (void)reference.drcr.disable_component(name);
        }
      } else if (op < 11) {
        // Budget shrink (and later grow) on both internal resolvers, when
        // the current internal resolver is the utilization-budget one.
        static const double kBudgets[] = {0.3, 0.5, 0.7, 0.9};
        const double budget = kBudgets[rng() % std::size(kBudgets)];
        auto* b1 = dynamic_cast<UtilizationBudgetResolver*>(
            &incremental.drcr.internal_resolver());
        auto* b2 = dynamic_cast<UtilizationBudgetResolver*>(
            &reference.drcr.internal_resolver());
        ASSERT_EQ(b1 != nullptr, b2 != nullptr);
        if (b1 != nullptr && b2 != nullptr) {
          b1->set_budget(budget);
          b2->set_budget(budget);
          incremental.drcr.resolve();
          reference.drcr.resolve();
        }
      } else {
        const std::uint64_t which = rng();
        swap_resolver(incremental, which);
        swap_resolver(reference, which);
      }
      expect_identical(incremental, reference, pool, step);
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure()) {
        FAIL() << "divergence at seed " << seed << " step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace drt::drcom
