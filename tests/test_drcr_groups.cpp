// Group activation: dependency cycles (feedback loops), batch admission
// interaction, rollback of failed groups. These cover the DRCR extension
// beyond the paper's §4.3 linear-dependency scenario — the "port based
// components' limitations" its §6 flags as future work.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

class Echo : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      co_await job.next_cycle();
    }
  }
};

ComponentDescriptor component(std::string name, double usage,
                              std::vector<std::string> outs,
                              std::vector<std::string> ins) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "grp.Echo";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = PeriodicSpec{500.0, 0, 5};
  for (auto& out : outs) {
    d.ports.push_back({PortDirection::kOut, std::move(out),
                       PortInterface::kShm, rtos::DataType::kInteger, 2});
  }
  for (auto& in : ins) {
    d.ports.push_back({PortDirection::kIn, std::move(in), PortInterface::kShm,
                       rtos::DataType::kInteger, 2});
  }
  return d;
}

struct GroupFixture : public ::testing::Test {
  GroupFixture() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory(
        "grp.Echo", [] { return std::make_unique<Echo>(); });
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
};

TEST_F(GroupFixture, TwoComponentFeedbackCycleActivates) {
  // a -> ab -> b -> ba -> a : neither can activate alone.
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"}, {"ba"})).ok());
  EXPECT_EQ(drcr.state_of("a").value(), ComponentState::kUnsatisfied);
  ASSERT_TRUE(drcr.register_component(component("b", 0.1, {"ba"}, {"ab"})).ok());
  EXPECT_EQ(drcr.state_of("a").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kActive);
  // Both ports exist in the kernel.
  EXPECT_NE(kernel.shm_find("ab"), nullptr);
  EXPECT_NE(kernel.shm_find("ba"), nullptr);
  engine.run_until(milliseconds(20));
  EXPECT_GT(drcr.instance_of("a")->status().stats.activations, 5u);
}

TEST_F(GroupFixture, ThreeComponentRingActivates) {
  ASSERT_TRUE(drcr.register_component(component("x", 0.1, {"xy"}, {"zx"})).ok());
  ASSERT_TRUE(drcr.register_component(component("y", 0.1, {"yz"}, {"xy"})).ok());
  EXPECT_EQ(drcr.active_count(), 0u);
  ASSERT_TRUE(drcr.register_component(component("z", 0.1, {"zx"}, {"yz"})).ok());
  EXPECT_EQ(drcr.active_count(), 3u);
}

TEST_F(GroupFixture, CycleCascadesDownTogether) {
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"}, {"ba"})).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.1, {"ba"}, {"ab"})).ok());
  ASSERT_EQ(drcr.active_count(), 2u);
  ASSERT_TRUE(drcr.unregister_component("a").ok());
  // b loses its provider; the cycle cannot stand half-built.
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(kernel.shm_find("ba"), nullptr);
  // Re-registering a restores the whole cycle.
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"}, {"ba"})).ok());
  EXPECT_EQ(drcr.active_count(), 2u);
}

TEST_F(GroupFixture, AdmissionRejectionOfCycleMemberBlocksWholeCycle) {
  // Fill the budget so the second cycle member cannot be admitted.
  ASSERT_TRUE(drcr.register_component(component("fill", 0.7, {}, {})).ok());
  ASSERT_TRUE(drcr.register_component(component("a", 0.15, {"ab"}, {"ba"})).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.15, {"ba"}, {"ab"})).ok());
  // 0.7 + 0.15 admits a, but b busts 0.9: the functional closure then kills
  // a too — half a feedback loop must never run.
  EXPECT_EQ(drcr.state_of("a").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(drcr.active_count(), 1u);
  // Freeing budget activates the cycle.
  ASSERT_TRUE(drcr.unregister_component("fill").ok());
  EXPECT_EQ(drcr.active_count(), 2u);
}

TEST_F(GroupFixture, MixedChainAndCycleActivateInOneResolve) {
  // Source feeds a cycle; a sink hangs off the cycle.
  ASSERT_TRUE(drcr.register_component(component("sink", 0.05, {}, {"cd"})).ok());
  ASSERT_TRUE(
      drcr.register_component(component("c", 0.1, {"cd"}, {"dc", "in"})).ok());
  ASSERT_TRUE(drcr.register_component(component("d", 0.1, {"dc"}, {"cd"})).ok());
  EXPECT_EQ(drcr.active_count(), 0u);
  ASSERT_TRUE(drcr.register_component(component("src", 0.05, {"in"}, {})).ok());
  EXPECT_EQ(drcr.active_count(), 4u);
}

TEST_F(GroupFixture, SelfLoopIsRejected) {
  // A component consuming its own out-port name cannot satisfy itself
  // (provider must be a different component, §2.3 port matching).
  ASSERT_TRUE(
      drcr.register_component(component("narc", 0.1, {"me"}, {"me2"})).ok());
  EXPECT_EQ(drcr.state_of("narc").value(), ComponentState::kUnsatisfied);
}

TEST_F(GroupFixture, MechanicalFailureOfOneMemberRetriesWithoutIt) {
  // "bad" has no factory: instantiation fails. The group logic must exclude
  // it and still activate the independent "good".
  ComponentDescriptor bad = component("bad", 0.1, {"bx"}, {});
  bad.bincode = "grp.Missing";
  ASSERT_TRUE(drcr.register_component(std::move(bad)).ok());
  ASSERT_TRUE(drcr.register_component(component("good", 0.1, {"gx"}, {})).ok());
  EXPECT_EQ(drcr.state_of("good").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("bad").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("bad")->reason.find("no implementation"),
            std::string::npos);
}

TEST_F(GroupFixture, PortSquatterFailsOnlyTheSquattedComponent) {
  // An out-port name already taken in the kernel (stale object) must fail
  // that component's activation but not poison the rest of the group.
  ASSERT_TRUE(kernel.shm_create("px", 8).ok());
  ASSERT_TRUE(drcr.register_component(component("p", 0.1, {"px"}, {})).ok());
  ASSERT_TRUE(drcr.register_component(component("q", 0.1, {"qx"}, {})).ok());
  EXPECT_EQ(drcr.state_of("p").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("p")->reason.find("port"),
            std::string::npos);
  EXPECT_EQ(drcr.state_of("q").value(), ComponentState::kActive);
  // And q's IPC survived the rollback of p.
  EXPECT_NE(kernel.shm_find("qx"), nullptr);
  EXPECT_NE(kernel.mailbox_find("q.cmd"), nullptr);
  EXPECT_EQ(kernel.mailbox_find("p.cmd"), nullptr);
}

TEST_F(GroupFixture, CycleMembersShareOneActivationBatchInEvents) {
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"}, {"ba"})).ok());
  drcr.clear_recent_events();
  ASSERT_TRUE(drcr.register_component(component("b", 0.1, {"ba"}, {"ab"})).ok());
  std::size_t activated = 0;
  for (const auto& event : drcr.recent_events()) {
    if (event.type == DrcrEventType::kActivated) ++activated;
  }
  EXPECT_EQ(activated, 2u);
}

}  // namespace
}  // namespace drt::drcom
