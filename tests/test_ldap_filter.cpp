// RFC 1960 / OSGi LDAP filter tests: grammar, operators, type-aware
// comparison, wildcards, escaping and error cases — plus seeded property
// tests (parse/to_string round-trip over generated filters, and a mutation
// corpus that must never crash the parser).
#include <gtest/gtest.h>

#include <string>

#include "osgi/ldap_filter.hpp"
#include "util/rng.hpp"

namespace drt::osgi {
namespace {

Properties camera_props() {
  Properties props;
  props.set("component.name", std::string("camera"));
  props.set("priority", std::int64_t{2});
  props.set("cpuusage", 0.1);
  props.set("enabled", true);
  props.set("objectClass",
            std::vector<std::string>{"drcom.RtComponentManagement",
                                     "drcom.Tunable"});
  return props;
}

bool matches(const std::string& filter_text, const Properties& props) {
  auto filter = Filter::parse(filter_text);
  EXPECT_TRUE(filter.ok()) << filter_text << ": "
                           << (filter.ok() ? "" : filter.error().message);
  return filter.ok() && filter.value().matches(props);
}

TEST(LdapFilter, EqualityOnStrings) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(component.name=camera)", props));
  EXPECT_FALSE(matches("(component.name=display)", props));
  EXPECT_FALSE(matches("(no.such.key=x)", props));
}

TEST(LdapFilter, KeysAreCaseInsensitive) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(Component.Name=camera)", props));
  // ...but string values are case-sensitive for '='.
  EXPECT_FALSE(matches("(component.name=CAMERA)", props));
}

TEST(LdapFilter, ApproxFoldsCaseAndWhitespace) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(component.name~=CAMERA)", props));
  EXPECT_TRUE(matches("(component.name~= ca mera )", props));
}

TEST(LdapFilter, NumericComparisons) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(priority=2)", props));
  EXPECT_TRUE(matches("(priority>=2)", props));
  EXPECT_TRUE(matches("(priority<=2)", props));
  EXPECT_TRUE(matches("(priority>=1)", props));
  EXPECT_FALSE(matches("(priority>=3)", props));
  EXPECT_TRUE(matches("(cpuusage<=0.5)", props));
  EXPECT_FALSE(matches("(cpuusage>=0.5)", props));
}

TEST(LdapFilter, IntegerComparedAgainstDoubleLiteral) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(priority>=1.5)", props));
  EXPECT_FALSE(matches("(priority>=2.5)", props));
}

TEST(LdapFilter, BooleanEquality) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(enabled=true)", props));
  EXPECT_FALSE(matches("(enabled=false)", props));
  EXPECT_FALSE(matches("(enabled=banana)", props));
}

TEST(LdapFilter, Presence) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(priority=*)", props));
  EXPECT_FALSE(matches("(no.such.key=*)", props));
}

TEST(LdapFilter, SubstringWildcards) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(component.name=cam*)", props));
  EXPECT_TRUE(matches("(component.name=*era)", props));
  EXPECT_TRUE(matches("(component.name=*ame*)", props));
  EXPECT_TRUE(matches("(component.name=c*m*a)", props));
  EXPECT_FALSE(matches("(component.name=cam*x)", props));
  EXPECT_FALSE(matches("(component.name=x*era)", props));
}

TEST(LdapFilter, SubstringAnchorsDoNotOverlap) {
  Properties props;
  props.set("k", std::string("aba"));
  EXPECT_TRUE(matches("(k=a*a)", props));
  props.set("k", std::string("a"));
  // "a*a" needs at least two characters.
  EXPECT_FALSE(matches("(k=a*a)", props));
}

TEST(LdapFilter, ArrayValuesMatchAnyElement) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(objectClass=drcom.RtComponentManagement)", props));
  EXPECT_TRUE(matches("(objectClass=drcom.Tunable)", props));
  EXPECT_FALSE(matches("(objectClass=other)", props));
  EXPECT_TRUE(matches("(objectClass=drcom.*)", props));
}

TEST(LdapFilter, CompositeAndOrNot) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("(&(component.name=camera)(priority<=3))", props));
  EXPECT_FALSE(matches("(&(component.name=camera)(priority<=1))", props));
  EXPECT_TRUE(matches("(|(component.name=nope)(priority=2))", props));
  EXPECT_FALSE(matches("(|(component.name=nope)(priority=9))", props));
  EXPECT_TRUE(matches("(!(component.name=nope))", props));
  EXPECT_FALSE(matches("(!(component.name=camera))", props));
}

TEST(LdapFilter, DeepNesting) {
  const auto props = camera_props();
  EXPECT_TRUE(matches(
      "(&(|(component.name=display)(component.name=camera))"
      "(!(priority>=5))(enabled=true))",
      props));
}

TEST(LdapFilter, EscapedSpecialCharacters) {
  Properties props;
  props.set("path", std::string("a(b)c*d\\e"));
  EXPECT_TRUE(matches(R"((path=a\(b\)c\*d\\e))", props));
  // An escaped star is a literal, not a wildcard.
  props.set("star", std::string("x*y"));
  EXPECT_TRUE(matches(R"((star=x\*y))", props));
  EXPECT_FALSE(matches(R"((star=x\*z))", props));
}

TEST(LdapFilter, WhitespaceTolerated) {
  const auto props = camera_props();
  EXPECT_TRUE(matches("( &  (component.name=camera) (priority=2) )", props));
}

struct BadFilter {
  const char* name;
  const char* text;
};

class LdapFilterErrors : public ::testing::TestWithParam<BadFilter> {};

TEST_P(LdapFilterErrors, Rejected) {
  auto filter = Filter::parse(GetParam().text);
  ASSERT_FALSE(filter.ok()) << GetParam().name;
  EXPECT_EQ(filter.error().code, "osgi.bad_filter");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LdapFilterErrors,
    ::testing::Values(BadFilter{"empty", ""},
                      BadFilter{"no_parens", "a=b"},
                      BadFilter{"unclosed", "(a=b"},
                      BadFilter{"trailing", "(a=b))"},
                      BadFilter{"empty_composite", "(&)"},
                      BadFilter{"missing_operand", "(!)"},
                      BadFilter{"no_operator", "(abc)"},
                      BadFilter{"star_in_gte", "(a>=1*2)"},
                      BadFilter{"unescaped_paren", "(a=b(c)"},
                      BadFilter{"empty_attr", "(=b)"}),
    [](const auto& info) { return info.param.name; });

TEST(LdapFilter, ToStringIsNormalizedSource) {
  auto filter = Filter::parse("  (a=b)  ");
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter.value().to_string(), "(a=b)");
}

// ------------------------------------------------------- property tests --

/// Renders a random filter expression. Leaves draw from a small attribute /
/// value pool so generated filters sometimes match the properties below.
std::string random_filter(Rng& rng, int depth) {
  static const char* kAttrs[] = {"component.name", "priority", "cpuusage",
                                 "enabled", "objectClass"};
  static const char* kValues[] = {"camera", "display", "2", "0.1",
                                  "true", "drcom.*", "cam*", "*era", "*"};
  if (depth >= 3 || rng.uniform(0, 2) == 0) {
    const char* attr = kAttrs[rng.uniform(0, 4)];
    const char* value = kValues[rng.uniform(0, 8)];
    static const char* kOps[] = {"=", ">=", "<=", "~="};
    std::string op = kOps[rng.uniform(0, 3)];
    // Wildcards are only legal with '='.
    if (std::string(value).find('*') != std::string::npos) op = "=";
    return std::string("(") + attr + op + value + ")";
  }
  const std::int64_t pick = rng.uniform(0, 2);
  if (pick == 0) {
    std::string out = "(!";
    out += random_filter(rng, depth + 1);
    return out + ")";
  }
  std::string out = pick == 1 ? "(&" : "(|";
  const std::int64_t arity = rng.uniform(1, 3);
  for (std::int64_t i = 0; i < arity; ++i) {
    out += random_filter(rng, depth + 1);
  }
  return out + ")";
}

// parse -> to_string -> parse must be a fixpoint: the reparse of the
// normalized text renders identically AND matches the same property sets.
TEST(LdapFilterProperties, ParseToStringParseRoundTrip) {
  const auto props = camera_props();
  Properties empty;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed);
    const std::string source = random_filter(rng, 0);
    auto first = Filter::parse(source);
    ASSERT_TRUE(first.ok()) << source << ": " << first.error().message;
    const std::string normalized = first.value().to_string();
    auto second = Filter::parse(normalized);
    ASSERT_TRUE(second.ok())
        << "normalized form rejected: " << normalized;
    EXPECT_EQ(second.value().to_string(), normalized) << source;
    EXPECT_EQ(first.value().matches(props), second.value().matches(props))
        << source;
    EXPECT_EQ(first.value().matches(empty), second.value().matches(empty))
        << source;
  }
}

// Mutation corpus: random edits of a valid filter must either parse (and
// then normalize to a fixpoint) or fail with the structured error code —
// never crash, never return an unusable success.
TEST(LdapFilterProperties, MutatedFiltersNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed * 7919);
    std::string text = random_filter(rng, 0);
    const std::int64_t edits = rng.uniform(1, 3);
    for (std::int64_t i = 0; i < edits; ++i) {
      static const char kBytes[] = "()&|!=<>~*\\ ab5\0";
      switch (rng.uniform(0, 2)) {
        case 0:  // truncate
          text = text.substr(0, rng.uniform(0, text.size()));
          break;
        case 1:  // delete one byte
          if (!text.empty()) {
            text.erase(static_cast<std::size_t>(
                rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1)));
          }
          break;
        default:  // insert one byte (incl. an embedded NUL)
          text.insert(static_cast<std::size_t>(
                          rng.uniform(0, text.size())),
                      1, kBytes[rng.uniform(0, 15)]);
          break;
      }
    }
    auto filter = Filter::parse(text);
    if (!filter.ok()) {
      EXPECT_EQ(filter.error().code, "osgi.bad_filter") << text;
      continue;
    }
    const std::string normalized = filter.value().to_string();
    auto reparsed = Filter::parse(normalized);
    ASSERT_TRUE(reparsed.ok()) << "accepted '" << text
                               << "' but rejected its own normalization '"
                               << normalized << "'";
    EXPECT_EQ(reparsed.value().to_string(), normalized);
  }
}

}  // namespace
}  // namespace drt::osgi
