// Descriptor extensions: optional in-ports and constrained deadlines — and
// their behaviour through the kernel, the hybrid component and the DRCR.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

// ------------------------------------------------------ descriptor level --

TEST(OptionalPorts, ParsesOptionalInport) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="c" type="aperiodic">
      <implementation bincode="x.Y"/>
      <inport name="extra" interface="RTAI.SHM" type="Integer" size="4"
              optional="true"/>
      <inport name="main" interface="RTAI.SHM" type="Integer" size="4"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().find_port("extra")->optional);
  EXPECT_FALSE(parsed.value().find_port("main")->optional);
}

TEST(OptionalPorts, OptionalOutportRejected) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="c" type="aperiodic">
      <implementation bincode="x.Y"/>
      <outport name="p" interface="RTAI.SHM" type="Integer" size="4"
               optional="true"/>
    </drt:component>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("cannot be optional"),
            std::string::npos);
}

TEST(OptionalPorts, RoundTripsThroughWriter) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="c" type="aperiodic">
      <implementation bincode="x.Y"/>
      <inport name="extra" interface="RTAI.SHM" type="Integer" size="4"
              optional="true"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok());
  auto reparsed = parse_descriptor(write_descriptor(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.value().find_port("extra")->optional);
}

TEST(Deadlines, ParsesAndValidates) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="c" type="periodic" cpuusage="0.1">
      <implementation bincode="x.Y"/>
      <periodictask frequence="1000" priority="2" deadline="400000"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().periodic->deadline, 400'000);
  EXPECT_EQ(parsed.value().periodic->effective_deadline(), 400'000);
}

TEST(Deadlines, ImplicitDeadlineEqualsPeriod) {
  PeriodicSpec spec{1000.0, 0, 2};
  EXPECT_EQ(spec.effective_deadline(), milliseconds(1));
}

TEST(Deadlines, DeadlineBeyondPeriodRejected) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="c" type="periodic" cpuusage="0.1">
      <implementation bincode="x.Y"/>
      <periodictask frequence="1000" priority="2" deadline="2000000"/>
    </drt:component>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("deadline exceeds"),
            std::string::npos);
}

TEST(Deadlines, RoundTripsThroughWriter) {
  auto parsed = parse_descriptor(R"(
    <drt:component name="c" type="periodic" cpuusage="0.1">
      <implementation bincode="x.Y"/>
      <periodictask frequence="1000" priority="2" deadline="250000"/>
    </drt:component>)");
  ASSERT_TRUE(parsed.ok());
  auto reparsed = parse_descriptor(write_descriptor(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().periodic->deadline, 250'000);
}

// ---------------------------------------------------------- kernel level --

TEST(Deadlines, ConstrainedDeadlineTightensMissAccounting) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  // 600us job in a 1ms period: fine with the implicit deadline, late
  // against a 500us constrained deadline.
  auto body = [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
    while (!ctx.stop_requested()) {
      co_await ctx.consume(microseconds(600));
      co_await ctx.wait_next_period();
    }
  };
  rtos::TaskParams implicit;
  implicit.name = "imp";
  implicit.type = rtos::TaskType::kPeriodic;
  implicit.period = milliseconds(1);
  rtos::TaskParams constrained = implicit;
  constrained.name = "con";
  constrained.deadline = microseconds(500);
  constrained.cpu = 1;  // isolate the two
  auto a = kernel.create_task(implicit, body);
  auto b = kernel.create_task(constrained, body);
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(milliseconds(100));
  EXPECT_EQ(kernel.find_task(a.value())->stats.deadline_misses, 0u);
  EXPECT_GT(kernel.find_task(b.value())->stats.deadline_misses, 50u);
}

// ------------------------------------------------------------ DRCR level --

class Probe : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      saw_optional = job.in_shm("bonus") != nullptr;
      if (saw_optional) {
        last_value = job.read_i32("bonus", 0).value_or(-1);
      }
      co_await job.next_cycle();
    }
  }
  bool saw_optional = false;
  std::int32_t last_value = -1;
};

class Feeder : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      job.write_i32("bonus", 0, 7);
      co_await job.next_cycle();
    }
  }
};

struct OptionalPortFixture : public ::testing::Test {
  OptionalPortFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory("opt.Probe", [this] {
      auto instance = std::make_unique<Probe>();
      probe = instance.get();
      return instance;
    });
    drcr.factories().register_factory(
        "opt.Feeder", [] { return std::make_unique<Feeder>(); });
  }

  ComponentDescriptor probe_descriptor() {
    auto parsed = parse_descriptor(R"(
      <drt:component name="probe" type="periodic" cpuusage="0.1">
        <implementation bincode="opt.Probe"/>
        <periodictask frequence="1000" priority="3"/>
        <inport name="bonus" interface="RTAI.SHM" type="Integer" size="2"
                optional="true"/>
      </drt:component>)");
    return std::move(parsed).take();
  }

  ComponentDescriptor feeder_descriptor() {
    auto parsed = parse_descriptor(R"(
      <drt:component name="feeder" type="periodic" cpuusage="0.1">
        <implementation bincode="opt.Feeder"/>
        <periodictask frequence="1000" priority="2"/>
        <outport name="bonus" interface="RTAI.SHM" type="Integer" size="2"/>
      </drt:component>)");
    return std::move(parsed).take();
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  Probe* probe = nullptr;
};

TEST_F(OptionalPortFixture, ActivatesWithoutOptionalProvider) {
  ASSERT_TRUE(drcr.register_component(probe_descriptor()).ok());
  EXPECT_EQ(drcr.state_of("probe").value(), ComponentState::kActive);
  engine.run_until(milliseconds(10));
  ASSERT_NE(probe, nullptr);
  EXPECT_FALSE(probe->saw_optional);
}

TEST_F(OptionalPortFixture, PicksUpLateProviderAutomatically) {
  ASSERT_TRUE(drcr.register_component(probe_descriptor()).ok());
  engine.run_until(milliseconds(10));
  ASSERT_TRUE(drcr.register_component(feeder_descriptor()).ok());
  engine.run_until(milliseconds(20));
  EXPECT_TRUE(probe->saw_optional);
  EXPECT_EQ(probe->last_value, 7);
}

TEST_F(OptionalPortFixture, LosingOptionalProviderDoesNotCascade) {
  ASSERT_TRUE(drcr.register_component(feeder_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(probe_descriptor()).ok());
  engine.run_until(milliseconds(10));
  EXPECT_TRUE(probe->saw_optional);
  ASSERT_TRUE(drcr.unregister_component("feeder").ok());
  // The probe stays ACTIVE — an optional dependency never cascades.
  EXPECT_EQ(drcr.state_of("probe").value(), ComponentState::kActive);
  engine.run_until(milliseconds(20));
  EXPECT_FALSE(probe->saw_optional);
}

}  // namespace
}  // namespace drt::drcom
