// Service registry semantics: registration, ranked lookup, filters,
// listeners, trackers, bundle-scoped cleanup.
#include <gtest/gtest.h>

#include "osgi/framework.hpp"
#include "osgi/service_tracker.hpp"

namespace drt::osgi {
namespace {

struct Greeter {
  std::string greeting = "hello";
};

TEST(ServiceRegistry, RegisterAndLookup) {
  ServiceRegistry registry;
  auto registration = registry.register_service(
      1, {"app.Greeter"}, std::make_shared<Greeter>(), {});
  ASSERT_TRUE(registration.is_valid());
  const auto reference = registry.get_reference("app.Greeter");
  ASSERT_TRUE(reference.has_value());
  auto service = registry.get_service<Greeter>(*reference);
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->greeting, "hello");
}

TEST(ServiceRegistry, StandardPropertiesInjected) {
  ServiceRegistry registry;
  auto registration = registry.register_service(
      7, {"a.B", "a.C"}, std::make_shared<Greeter>(), {});
  const auto reference = registration.reference();
  EXPECT_TRUE(reference.properties().contains("objectClass"));
  EXPECT_EQ(reference.properties().get_int("service.id").value(),
            static_cast<std::int64_t>(reference.service_id()));
  EXPECT_EQ(reference.properties().get_int("service.bundleid").value(), 7);
  EXPECT_EQ(reference.interfaces().size(), 2u);
}

TEST(ServiceRegistry, LookupByAnyRegisteredInterface) {
  ServiceRegistry registry;
  registry.register_service(1, {"a.B", "a.C"}, std::make_shared<Greeter>(),
                            {});
  EXPECT_TRUE(registry.get_reference("a.B").has_value());
  EXPECT_TRUE(registry.get_reference("a.C").has_value());
  EXPECT_FALSE(registry.get_reference("a.D").has_value());
}

TEST(ServiceRegistry, FilterRestrictsLookup) {
  ServiceRegistry registry;
  Properties props_a;
  props_a.set("flavor", std::string("vanilla"));
  registry.register_service(1, {"app.S"}, std::make_shared<Greeter>(),
                            props_a);
  Properties props_b;
  props_b.set("flavor", std::string("chocolate"));
  registry.register_service(1, {"app.S"}, std::make_shared<Greeter>(),
                            props_b);
  auto filter = Filter::parse("(flavor=chocolate)").value();
  const auto references = registry.get_references("app.S", &filter);
  ASSERT_EQ(references.size(), 1u);
  EXPECT_EQ(references[0].properties().get_string("flavor").value(),
            "chocolate");
}

TEST(ServiceRegistry, RankingOrdersReferences) {
  ServiceRegistry registry;
  Properties low;
  low.set("service.ranking", std::int64_t{1});
  Properties high;
  high.set("service.ranking", std::int64_t{10});
  auto first = registry.register_service(1, {"app.S"},
                                         std::make_shared<Greeter>(), low);
  auto second = registry.register_service(1, {"app.S"},
                                          std::make_shared<Greeter>(), high);
  const auto best = registry.get_reference("app.S");
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->service_id(), second.reference().service_id());
  // Equal ranking: lowest service.id wins.
  auto third = registry.register_service(1, {"app.S"},
                                         std::make_shared<Greeter>(), high);
  EXPECT_EQ(registry.get_reference("app.S")->service_id(),
            second.reference().service_id());
}

TEST(ServiceRegistry, UnregisterInvalidatesReferences) {
  ServiceRegistry registry;
  auto registration =
      registry.register_service(1, {"app.S"}, std::make_shared<Greeter>(), {});
  auto reference = registration.reference();
  EXPECT_TRUE(reference.is_valid());
  registration.unregister();
  EXPECT_FALSE(reference.is_valid());
  EXPECT_EQ(registry.get_service<Greeter>(reference), nullptr);
  EXPECT_FALSE(registry.get_reference("app.S").has_value());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServiceRegistry, UnregisterAllForBundle) {
  ServiceRegistry registry;
  registry.register_service(1, {"a"}, std::make_shared<Greeter>(), {});
  registry.register_service(2, {"b"}, std::make_shared<Greeter>(), {});
  registry.register_service(1, {"c"}, std::make_shared<Greeter>(), {});
  registry.unregister_all(1);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.get_reference("b").has_value());
}

TEST(ServiceRegistry, ListenersSeeLifecycleEvents) {
  ServiceRegistry registry;
  std::vector<std::string> log;
  registry.add_listener([&](const ServiceEvent& event) {
    log.push_back(std::string(to_string(event.type)));
  });
  auto registration =
      registry.register_service(1, {"app.S"}, std::make_shared<Greeter>(), {});
  Properties updated;
  updated.set("x", std::int64_t{1});
  registration.set_properties(updated);
  registration.unregister();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "REGISTERED");
  EXPECT_EQ(log[1], "MODIFIED");
  EXPECT_EQ(log[2], "UNREGISTERING");
}

TEST(ServiceRegistry, FilteredListenerOnlySeesMatches) {
  ServiceRegistry registry;
  int events = 0;
  registry.add_listener([&](const ServiceEvent&) { ++events; },
                        Filter::parse("(kind=rt)").value());
  Properties rt;
  rt.set("kind", std::string("rt"));
  registry.register_service(1, {"a"}, std::make_shared<Greeter>(), rt);
  registry.register_service(1, {"b"}, std::make_shared<Greeter>(), {});
  EXPECT_EQ(events, 1);
}

TEST(ServiceRegistry, RemoveListenerStopsDelivery) {
  ServiceRegistry registry;
  int events = 0;
  const auto token =
      registry.add_listener([&](const ServiceEvent&) { ++events; });
  registry.register_service(1, {"a"}, std::make_shared<Greeter>(), {});
  registry.remove_listener(token);
  registry.register_service(1, {"b"}, std::make_shared<Greeter>(), {});
  EXPECT_EQ(events, 1);
}

TEST(ServiceRegistry, SetPropertiesPreservesStandardKeys) {
  ServiceRegistry registry;
  auto registration =
      registry.register_service(3, {"app.S"}, std::make_shared<Greeter>(), {});
  Properties replacement;
  replacement.set("only", std::string("this"));
  registration.set_properties(replacement);
  const auto reference = registration.reference();
  EXPECT_TRUE(reference.properties().contains("objectClass"));
  EXPECT_TRUE(reference.properties().contains("service.id"));
  EXPECT_EQ(reference.properties().get_string("only").value(), "this");
}

// ---------------------------------------------------------------- tracker

TEST(ServiceTracker, TracksExistingAndNewServices) {
  Framework framework;
  auto& context = framework.system_context();
  // Pre-existing service.
  context.register_service("app.S", std::make_shared<Greeter>());
  std::vector<std::string> log;
  ServiceTracker::Callbacks callbacks;
  callbacks.on_added = [&](const ServiceReference&) { log.push_back("add"); };
  callbacks.on_removed = [&](const ServiceReference&) {
    log.push_back("remove");
  };
  ServiceTracker tracker(context, "app.S", std::nullopt,
                         std::move(callbacks));
  tracker.open();
  EXPECT_EQ(tracker.size(), 1u);
  auto registration =
      context.register_service("app.S", std::make_shared<Greeter>());
  EXPECT_EQ(tracker.size(), 2u);
  registration.unregister();
  EXPECT_EQ(tracker.size(), 1u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "add");
  EXPECT_EQ(log[1], "add");
  EXPECT_EQ(log[2], "remove");
}

TEST(ServiceTracker, BestPrefersRanking) {
  Framework framework;
  auto& context = framework.system_context();
  ServiceTracker tracker(context, "app.S");
  tracker.open();
  Properties low;
  low.set("service.ranking", std::int64_t{1});
  low.set("tag", std::string("low"));
  Properties high;
  high.set("service.ranking", std::int64_t{5});
  high.set("tag", std::string("high"));
  context.register_service("app.S", std::make_shared<Greeter>(), low);
  context.register_service("app.S", std::make_shared<Greeter>(), high);
  const auto best = tracker.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->properties().get_string("tag").value(), "high");
  auto service = tracker.best_service<Greeter>();
  EXPECT_NE(service, nullptr);
}

TEST(ServiceTracker, CloseDeliversRemovals) {
  Framework framework;
  auto& context = framework.system_context();
  context.register_service("app.S", std::make_shared<Greeter>());
  int removals = 0;
  ServiceTracker::Callbacks callbacks;
  callbacks.on_removed = [&](const ServiceReference&) { ++removals; };
  ServiceTracker tracker(context, "app.S", std::nullopt,
                         std::move(callbacks));
  tracker.open();
  tracker.close();
  EXPECT_EQ(removals, 1);
  EXPECT_EQ(tracker.size(), 0u);
}

TEST(ServiceTracker, EntriesResortWhenRankingPropertyChanges) {
  // entries() promises best-first order ACROSS modify events: bumping a
  // ranking via set_properties must re-sort the cached vector, not just
  // fire on_modified (regression guard for the sort-free read path).
  Framework framework;
  auto& context = framework.system_context();
  ServiceTracker tracker(context, "app.S");
  tracker.open();
  Properties low;
  low.set("service.ranking", std::int64_t{1});
  low.set("tag", std::string("riser"));
  auto riser =
      context.register_service("app.S", std::make_shared<Greeter>(), low);
  Properties high;
  high.set("service.ranking", std::int64_t{5});
  high.set("tag", std::string("steady"));
  context.register_service("app.S", std::make_shared<Greeter>(), high);

  ASSERT_EQ(tracker.entries().size(), 2u);
  EXPECT_EQ(
      tracker.entries().front().reference.properties().get_string("tag"),
      "steady");

  Properties bumped;
  bumped.set("service.ranking", std::int64_t{9});
  bumped.set("tag", std::string("riser"));
  riser.set_properties(bumped);
  ASSERT_EQ(tracker.entries().size(), 2u);
  EXPECT_EQ(
      tracker.entries().front().reference.properties().get_string("tag"),
      "riser");
  // Ties (and demotions) fall back to registration order: drop the ranking
  // below the steady service and the original winner leads again.
  Properties demoted;
  demoted.set("service.ranking", std::int64_t{0});
  demoted.set("tag", std::string("riser"));
  riser.set_properties(demoted);
  EXPECT_EQ(
      tracker.entries().front().reference.properties().get_string("tag"),
      "steady");
}

TEST(ServiceTracker, ModifiedPropertiesMoveServicesInAndOut) {
  Framework framework;
  auto& context = framework.system_context();
  ServiceTracker tracker(context, "app.S",
                         Filter::parse("(active=true)").value());
  tracker.open();
  Properties inactive;
  inactive.set("active", false);
  auto registration =
      context.register_service("app.S", std::make_shared<Greeter>(), inactive);
  EXPECT_EQ(tracker.size(), 0u);
  Properties active;
  active.set("active", true);
  registration.set_properties(active);
  EXPECT_EQ(tracker.size(), 1u);
  registration.set_properties(inactive);
  EXPECT_EQ(tracker.size(), 0u);
}

}  // namespace
}  // namespace drt::osgi
