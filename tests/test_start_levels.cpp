// StartLevel semantics: ordered bring-up/tear-down, deferred starts,
// per-bundle level moves — and the pattern that matters for RT systems:
// infrastructure (DRCR, drivers) before applications.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "osgi/framework.hpp"
#include "test_helpers.hpp"

namespace drt::osgi {
namespace {

class LoggingActivator : public BundleActivator {
 public:
  LoggingActivator(std::string name, std::vector<std::string>* log)
      : name_(std::move(name)), log_(log) {}
  void start(BundleContext&) override { log_->push_back(name_ + ":start"); }
  void stop(BundleContext&) override { log_->push_back(name_ + ":stop"); }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

BundleDefinition leveled_bundle(std::string name, int level,
                                std::vector<std::string>* log) {
  BundleDefinition definition;
  definition.manifest.set_symbolic_name(name);
  definition.start_level = level;
  definition.activator_factory = [name, log] {
    return std::make_unique<LoggingActivator>(name, log);
  };
  return definition;
}

TEST(StartLevels, FrameworkStartsAtLevelOne) {
  Framework framework;
  EXPECT_EQ(framework.start_level(), 1);
}

TEST(StartLevels, StartAboveCurrentLevelIsDeferred) {
  std::vector<std::string> log;
  Framework framework;
  auto id = framework.install(leveled_bundle("app", 3, &log));
  ASSERT_TRUE(framework.start(id.value()).ok());  // marked, not started
  EXPECT_EQ(framework.get_bundle(id.value())->state(),
            BundleState::kInstalled);
  EXPECT_TRUE(framework.get_bundle(id.value())->autostart());
  EXPECT_TRUE(log.empty());
  framework.set_start_level(3);
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kActive);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "app:start");
}

TEST(StartLevels, RaisingStartsInLevelThenInstallOrder) {
  std::vector<std::string> log;
  Framework framework;
  // Installed out of level order on purpose.
  auto app2 = framework.install(leveled_bundle("app2", 3, &log));
  auto infra = framework.install(leveled_bundle("infra", 2, &log));
  auto app1 = framework.install(leveled_bundle("app1", 3, &log));
  for (auto id : {app2, infra, app1}) {
    ASSERT_TRUE(framework.start(id.value()).ok());
  }
  framework.set_start_level(5);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "infra:start");  // level 2 first
  EXPECT_EQ(log[1], "app2:start");   // then level 3 in install order
  EXPECT_EQ(log[2], "app1:start");
}

TEST(StartLevels, LoweringStopsReverseOrderAndKeepsMark) {
  std::vector<std::string> log;
  Framework framework;
  auto infra = framework.install(leveled_bundle("infra", 2, &log));
  auto app = framework.install(leveled_bundle("app", 3, &log));
  ASSERT_TRUE(framework.start(infra.value()).ok());
  ASSERT_TRUE(framework.start(app.value()).ok());
  framework.set_start_level(4);
  log.clear();
  framework.set_start_level(1);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "app:stop");    // higher level torn down first
  EXPECT_EQ(log[1], "infra:stop");
  // Marks survive: raising again restarts both.
  log.clear();
  framework.set_start_level(3);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "infra:start");
  EXPECT_EQ(log[1], "app:start");
}

TEST(StartLevels, ExplicitStopClearsTheMark) {
  std::vector<std::string> log;
  Framework framework;
  auto id = framework.install(leveled_bundle("app", 2, &log));
  ASSERT_TRUE(framework.start(id.value()).ok());
  framework.set_start_level(2);
  ASSERT_TRUE(framework.stop(id.value()).ok());
  log.clear();
  framework.set_start_level(1);
  framework.set_start_level(3);
  EXPECT_TRUE(log.empty());  // stopped bundles stay stopped across cycles
}

TEST(StartLevels, BundleLevelMoveStartsOrStops) {
  std::vector<std::string> log;
  Framework framework;
  auto id = framework.install(leveled_bundle("app", 1, &log));
  ASSERT_TRUE(framework.start(id.value()).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kActive);
  // Move above the active level: stops, mark survives.
  ASSERT_TRUE(framework.set_bundle_start_level(id.value(), 5).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(),
            BundleState::kResolved);
  EXPECT_TRUE(framework.get_bundle(id.value())->autostart());
  // Move back within reach: starts again.
  ASSERT_TRUE(framework.set_bundle_start_level(id.value(), 1).ok());
  EXPECT_EQ(framework.get_bundle(id.value())->state(), BundleState::kActive);
  EXPECT_FALSE(framework.set_bundle_start_level(id.value(), 0).ok());
  EXPECT_FALSE(framework.set_bundle_start_level(999, 2).ok());
}

TEST(StartLevels, FailedStartReportsFrameworkError) {
  Framework framework;
  BundleDefinition definition;
  definition.manifest.set_symbolic_name("broken");
  definition.start_level = 2;
  definition.manifest.add_import({"no.such.pkg", VersionRange{}, false});
  auto id = framework.install(std::move(definition));
  ASSERT_TRUE(framework.start(id.value()).ok());  // deferred
  int errors = 0;
  framework.add_framework_listener([&](const FrameworkEvent& event) {
    if (event.type == FrameworkEventType::kError) ++errors;
  });
  framework.set_start_level(2);  // best-effort: failure reported, not thrown
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(framework.start_level(), 2);
}

// ------------------------ the RT pattern: DRCR before applications --------

TEST(StartLevels, StagedRtBringUp) {
  // Components arrive in app bundles at level 3; the operator raises the
  // level once the level-2 infrastructure is up. Descriptors are only
  // scanned when their bundle actually starts.
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, rtos::testing::quiet_config());
  Framework framework;
  drcom::Drcr drcr(framework, kernel);
  class Echo : public drcom::RtComponent {
   public:
    rtos::TaskCoro run(drcom::JobContext& job) override {
      while (job.active()) {
        co_await job.consume(1'000);
        co_await job.next_cycle();
      }
    }
  };
  drcr.factories().register_factory(
      "lvl.Echo", [] { return std::make_unique<Echo>(); });

  drcom::ComponentDescriptor d;
  d.name = "tick";
  d.bincode = "lvl.Echo";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.1;
  d.periodic = drcom::PeriodicSpec{1000.0, 0, 5};
  BundleDefinition app;
  app.manifest.set_symbolic_name("rt.app");
  app.manifest.add_component_resource("DRT-INF/c.xml");
  app.resources["DRT-INF/c.xml"] = drcom::write_descriptor(d);
  app.start_level = 3;
  auto id = framework.install(std::move(app));
  ASSERT_TRUE(framework.start(id.value()).ok());  // deferred
  EXPECT_FALSE(drcr.state_of("tick").has_value());

  framework.set_start_level(3);
  EXPECT_EQ(drcr.state_of("tick").value(), drcom::ComponentState::kActive);
  framework.set_start_level(1);
  EXPECT_FALSE(drcr.state_of("tick").has_value());
}

}  // namespace
}  // namespace drt::osgi
