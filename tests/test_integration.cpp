// End-to-end integration: OSGi framework + DRCR + simulated RTAI kernel
// running the paper's own evaluation scenario (§4.2-§4.3):
//
//   * a Calculation component producing at 1000 Hz over shared memory,
//   * a Display component at 4 Hz functionally dependent on Calculation's
//     out-port,
//   * both delivered as individual bundles,
//   * dynamicity: stopping the Calculation bundle cascades Display into
//     UNSATISFIED; restarting re-activates both without restarting anything.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// The paper's "calculation task": simulated computing at 1000 Hz, writing
/// its scheduling-latency measurement into shared memory (§4.2).
class Calculation : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    std::int32_t sequence = 0;
    while (job.active()) {
      co_await job.consume(microseconds(50));  // simulated computing job
      job.write_i32("latdat", 0, ++sequence);
      job.write_i32("latdat", 1,
                    static_cast<std::int32_t>(job.task().task().latency.size()));
      co_await job.next_cycle();
    }
  }
};

/// The paper's "display task": reads the shared memory at 4 Hz.
class Display : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(100));
      last_seen = job.read_i32("latdat", 0).value_or(-1);
      ++frames;
      co_await job.next_cycle();
    }
  }

  std::int32_t last_seen = -1;
  int frames = 0;
};

ComponentDescriptor calculation_descriptor() {
  auto parsed = parse_descriptor(R"(
    <drt:component name="calc" desc="simulated computing job"
        type="periodic" cpuusage="0.2">
      <implementation bincode="demo.Calculation"/>
      <periodictask frequence="1000" runoncpu="0" priority="2"/>
      <outport name="latdat" interface="RTAI.SHM" type="Integer" size="8"/>
    </drt:component>)");
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).take();
}

ComponentDescriptor display_descriptor() {
  auto parsed = parse_descriptor(R"(
    <drt:component name="disp" desc="latency display"
        type="periodic" cpuusage="0.05">
      <implementation bincode="demo.Display"/>
      <periodictask frequence="4" runoncpu="0" priority="5"/>
      <inport name="latdat" interface="RTAI.SHM" type="Integer" size="8"/>
    </drt:component>)");
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).take();
}

osgi::BundleDefinition bundle_for(const std::string& name,
                                  const ComponentDescriptor& descriptor) {
  osgi::BundleDefinition definition;
  definition.manifest.set_symbolic_name(name).set_version(
      osgi::Version(1, 0, 0));
  definition.manifest.add_component_resource("DRT-INF/c.xml");
  definition.resources["DRT-INF/c.xml"] = write_descriptor(descriptor);
  return definition;
}

struct IntegrationFixture : public ::testing::Test {
  IntegrationFixture() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    display_impl = nullptr;
    drcr.factories().register_factory("demo.Calculation", [] {
      return std::make_unique<Calculation>();
    });
    drcr.factories().register_factory("demo.Display", [this] {
      auto instance = std::make_unique<Display>();
      display_impl = instance.get();
      return instance;
    });
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  Display* display_impl;
};

TEST_F(IntegrationFixture, Section43DynamicityScenario) {
  // Deploy Display first: its functional constraint is unsatisfied.
  auto disp_bundle = framework.install(bundle_for("rt.disp",
                                                  display_descriptor()));
  ASSERT_TRUE(disp_bundle.ok());
  ASSERT_TRUE(framework.start(disp_bundle.value()).ok());
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kUnsatisfied);

  // Deploy Calculation: DRCR resolves Display's functional constraint,
  // consults the resolving services, and activates BOTH.
  auto calc_bundle = framework.install(bundle_for("rt.calc",
                                                  calculation_descriptor()));
  ASSERT_TRUE(calc_bundle.ok());
  ASSERT_TRUE(framework.start(calc_bundle.value()).ok());
  EXPECT_EQ(drcr.state_of("calc").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kActive);

  // Let the system run 2 simulated seconds.
  engine.run_until(seconds(2));
  const auto* calc = drcr.instance_of("calc");
  const auto* disp = drcr.instance_of("disp");
  ASSERT_NE(calc, nullptr);
  ASSERT_NE(disp, nullptr);
  const auto calc_status = calc->status();
  const auto disp_status = disp->status();
  EXPECT_GE(calc_status.stats.activations, 1'990u);  // ~1000 Hz * 2 s
  EXPECT_GE(disp_status.stats.activations, 7u);      // ~4 Hz * 2 s
  EXPECT_EQ(calc_status.stats.deadline_misses, 0u);
  ASSERT_NE(display_impl, nullptr);
  EXPECT_GT(display_impl->last_seen, 1'000);  // data flowed over SHM

  // Dynamicity: stop the Calculation bundle. The DRCR gets notified and
  // finds Display's instance unsatisfied -> disables it (§4.3).
  ASSERT_TRUE(framework.stop(calc_bundle.value()).ok());
  EXPECT_FALSE(drcr.state_of("calc").has_value());
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(kernel.find_task("calc"), nullptr);
  EXPECT_EQ(kernel.find_task("disp"), nullptr);
  EXPECT_EQ(kernel.shm_find("latdat"), nullptr);

  // Restart: continuous deployment, no framework restart. Both come back.
  ASSERT_TRUE(framework.start(calc_bundle.value()).ok());
  EXPECT_EQ(drcr.state_of("calc").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kActive);
  engine.run_until(seconds(3));
  EXPECT_GT(drcr.instance_of("calc")->status().stats.activations, 900u);
}

TEST_F(IntegrationFixture, ManagementThroughServiceRegistryWhileRunning) {
  ASSERT_TRUE(drcr.register_component(calculation_descriptor()).ok());
  engine.run_until(milliseconds(100));
  // An adaptation manager discovers the component through the registry...
  auto filter = osgi::Filter::parse("(component.name=calc)").value();
  const auto reference =
      framework.registry().get_reference(kManagementInterface, &filter);
  ASSERT_TRUE(reference.has_value());
  auto management =
      framework.registry().get_service<RtComponentManagement>(*reference);
  ASSERT_NE(management, nullptr);
  // ...suspends it at runtime...
  ASSERT_TRUE(management->suspend().ok());
  engine.run_until(milliseconds(150));
  const auto suspended_status = management->get_status();
  EXPECT_TRUE(suspended_status.soft_suspended);
  const auto activations_frozen = suspended_status.stats.activations;
  engine.run_until(milliseconds(400));
  EXPECT_EQ(management->get_status().stats.activations, activations_frozen);
  // ...and resumes it without any component code involvement.
  ASSERT_TRUE(management->resume().ok());
  engine.run_until(milliseconds(600));
  EXPECT_GT(management->get_status().stats.activations, activations_frozen);
}

TEST_F(IntegrationFixture, BundleUpdateSwapsComponentVersion) {
  auto calc_bundle = framework.install(bundle_for("rt.calc",
                                                  calculation_descriptor()));
  ASSERT_TRUE(framework.start(calc_bundle.value()).ok());
  EXPECT_EQ(drcr.state_of("calc").value(), ComponentState::kActive);
  // New version of the descriptor: 500 Hz instead of 1000 Hz.
  ComponentDescriptor v2 = calculation_descriptor();
  v2.periodic->frequency_hz = 500.0;
  ASSERT_TRUE(
      framework.update(calc_bundle.value(), bundle_for("rt.calc", v2)).ok());
  EXPECT_EQ(drcr.state_of("calc").value(), ComponentState::kActive);
  const rtos::Task* task = kernel.find_task("calc");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->params.period, milliseconds(2));
}

TEST_F(IntegrationFixture, LatencyMeasurementUnderLoadSwitch) {
  // Run the calc task under light load, then switch the Linux-domain load
  // generator to stress and verify both phases produce samples. (The full
  // Table 1 regeneration lives in bench/bench_table1_latency.)
  ASSERT_TRUE(drcr.register_component(calculation_descriptor()).ok());
  engine.run_until(seconds(1));
  const auto* calc = drcr.instance_of("calc");
  const auto light_samples = calc->status().latency.count;
  EXPECT_GT(light_samples, 900u);
  kernel.set_load_config(rtos::stress_load());
  engine.run_until(seconds(2));
  EXPECT_GT(calc->status().latency.count, light_samples + 900u);
}

}  // namespace
}  // namespace drt::drcom
