// RTAI.Mailbox-interface ports end-to-end: event-driven (aperiodic)
// components consuming messages produced by periodic components — the second
// communication interface of §2.3.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// Periodic producer pushing one message per job into its mailbox out-port.
class EventSource : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    std::int32_t sequence = 0;
    while (job.active()) {
      co_await job.consume(microseconds(20));
      ++sequence;
      if (!job.send("events", rtos::message_from_string(
                                  "evt" + std::to_string(sequence)))) {
        ++dropped;
      }
      co_await job.next_cycle();
    }
  }
  int dropped = 0;
};

/// Aperiodic, event-driven consumer: blocks on its in-port mailbox.
class EventSink : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      auto message = co_await job.receive("events");
      if (!message.has_value()) continue;  // mailbox vanished / stale wake
      co_await job.consume(microseconds(50));
      received.push_back(rtos::message_to_string(*message));
    }
  }
  std::vector<std::string> received;
};

struct MailboxPortFixture : public ::testing::Test {
  MailboxPortFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory("mbx.Source", [this] {
      auto instance = std::make_unique<EventSource>();
      source = instance.get();
      return instance;
    });
    drcr.factories().register_factory("mbx.Sink", [this] {
      auto instance = std::make_unique<EventSink>();
      sink = instance.get();
      return instance;
    });
  }

  ComponentDescriptor source_descriptor(double hz = 100.0) {
    auto parsed = parse_descriptor(R"(
      <drt:component name="src" type="periodic" cpuusage="0.05">
        <implementation bincode="mbx.Source"/>
        <periodictask frequence="100" priority="3"/>
        <outport name="events" interface="RTAI.Mailbox" type="Byte"
                 size="16"/>
      </drt:component>)");
    auto descriptor = std::move(parsed).take();
    descriptor.periodic->frequency_hz = hz;
    return descriptor;
  }

  ComponentDescriptor sink_descriptor() {
    auto parsed = parse_descriptor(R"(
      <drt:component name="snk" type="aperiodic">
        <implementation bincode="mbx.Sink"/>
        <inport name="events" interface="RTAI.Mailbox" type="Byte"
                size="16"/>
      </drt:component>)");
    return std::move(parsed).take();
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  EventSource* source = nullptr;
  EventSink* sink = nullptr;
};

TEST_F(MailboxPortFixture, EventsFlowFromPeriodicToAperiodic) {
  ASSERT_TRUE(drcr.register_component(source_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(sink_descriptor()).ok());
  EXPECT_EQ(drcr.active_count(), 2u);
  EXPECT_NE(kernel.mailbox_find("events"), nullptr);
  engine.run_until(milliseconds(105));
  ASSERT_NE(sink, nullptr);
  // 100 Hz for ~100ms -> ~10 events, delivered in order, none dropped.
  ASSERT_GE(sink->received.size(), 9u);
  EXPECT_EQ(sink->received[0], "evt1");
  EXPECT_EQ(sink->received[1], "evt2");
  EXPECT_EQ(source->dropped, 0);
}

TEST_F(MailboxPortFixture, AperiodicConsumerIdlesBetweenEvents) {
  ASSERT_TRUE(drcr.register_component(source_descriptor(10.0)).ok());
  ASSERT_TRUE(drcr.register_component(sink_descriptor()).ok());
  engine.run_until(milliseconds(500));
  const rtos::Task* task = kernel.find_task("snk");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->state, rtos::TaskState::kWaitingMailbox);
  // ~5 events in 500ms at 10 Hz; each costs 50us.
  EXPECT_NEAR(static_cast<double>(task->stats.cpu_time),
              static_cast<double>(sink->received.size()) * 50'000.0, 1.0);
}

TEST_F(MailboxPortFixture, SlowConsumerDropsWhenMailboxFull) {
  // Sink admits but its jobs take longer than the production period, so the
  // 16-slot mailbox eventually overflows and the producer's sends fail fast
  // (asynchronous contract: the producer never blocks).
  class SlowSink : public RtComponent {
   public:
    rtos::TaskCoro run(JobContext& job) override {
      while (job.active()) {
        auto message = co_await job.receive("events");
        if (!message.has_value()) continue;
        co_await job.consume(milliseconds(25));  // slower than 100 Hz
      }
    }
  };
  drcr.factories().register_factory(
      "mbx.Slow", [] { return std::make_unique<SlowSink>(); });
  ComponentDescriptor slow = sink_descriptor();
  slow.bincode = "mbx.Slow";
  ASSERT_TRUE(drcr.register_component(source_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(std::move(slow)).ok());
  engine.run_until(seconds(1));
  EXPECT_GT(source->dropped, 0);
  EXPECT_GT(kernel.mailbox_find("events")->dropped_count(), 0u);
  // The producer's own schedule never degraded (async send).
  EXPECT_EQ(kernel.find_task("src")->stats.deadline_misses, 0u);
}

TEST_F(MailboxPortFixture, SinkDeactivationLeavesProducerRunning) {
  ASSERT_TRUE(drcr.register_component(source_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(sink_descriptor()).ok());
  engine.run_until(milliseconds(50));
  ASSERT_TRUE(drcr.unregister_component("snk").ok());
  // Producer owns the mailbox port; it keeps running (a consumer is not a
  // functional dependency of the producer).
  EXPECT_EQ(drcr.state_of("src").value(), ComponentState::kActive);
  engine.run_until(milliseconds(100));
  EXPECT_GT(kernel.find_task("src")->stats.activations, 8u);
}

}  // namespace
}  // namespace drt::drcom
