// RTAI.Mailbox-interface ports end-to-end: event-driven (aperiodic)
// components consuming messages produced by periodic components — the second
// communication interface of §2.3.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// Periodic producer pushing one message per job into its mailbox out-port.
class EventSource : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    std::int32_t sequence = 0;
    while (job.active()) {
      co_await job.consume(microseconds(20));
      ++sequence;
      if (!job.send("events", rtos::message_from_string(
                                  "evt" + std::to_string(sequence)))) {
        ++dropped;
      }
      co_await job.next_cycle();
    }
  }
  int dropped = 0;
};

/// Aperiodic, event-driven consumer: blocks on its in-port mailbox.
class EventSink : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      auto message = co_await job.receive("events");
      if (!message.has_value()) continue;  // mailbox vanished / stale wake
      co_await job.consume(microseconds(50));
      received.push_back(rtos::message_to_string(*message));
    }
  }
  std::vector<std::string> received;
};

struct MailboxPortFixture : public ::testing::Test {
  MailboxPortFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory("mbx.Source", [this] {
      auto instance = std::make_unique<EventSource>();
      source = instance.get();
      return instance;
    });
    drcr.factories().register_factory("mbx.Sink", [this] {
      auto instance = std::make_unique<EventSink>();
      sink = instance.get();
      return instance;
    });
  }

  ComponentDescriptor source_descriptor(double hz = 100.0) {
    auto parsed = parse_descriptor(R"(
      <drt:component name="src" type="periodic" cpuusage="0.05">
        <implementation bincode="mbx.Source"/>
        <periodictask frequence="100" priority="3"/>
        <outport name="events" interface="RTAI.Mailbox" type="Byte"
                 size="16"/>
      </drt:component>)");
    auto descriptor = std::move(parsed).take();
    descriptor.periodic->frequency_hz = hz;
    return descriptor;
  }

  ComponentDescriptor sink_descriptor() {
    auto parsed = parse_descriptor(R"(
      <drt:component name="snk" type="aperiodic">
        <implementation bincode="mbx.Sink"/>
        <inport name="events" interface="RTAI.Mailbox" type="Byte"
                size="16"/>
      </drt:component>)");
    return std::move(parsed).take();
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  EventSource* source = nullptr;
  EventSink* sink = nullptr;
};

TEST_F(MailboxPortFixture, EventsFlowFromPeriodicToAperiodic) {
  ASSERT_TRUE(drcr.register_component(source_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(sink_descriptor()).ok());
  EXPECT_EQ(drcr.active_count(), 2u);
  EXPECT_NE(kernel.mailbox_find("events"), nullptr);
  engine.run_until(milliseconds(105));
  ASSERT_NE(sink, nullptr);
  // 100 Hz for ~100ms -> ~10 events, delivered in order, none dropped.
  ASSERT_GE(sink->received.size(), 9u);
  EXPECT_EQ(sink->received[0], "evt1");
  EXPECT_EQ(sink->received[1], "evt2");
  EXPECT_EQ(source->dropped, 0);
}

TEST_F(MailboxPortFixture, AperiodicConsumerIdlesBetweenEvents) {
  ASSERT_TRUE(drcr.register_component(source_descriptor(10.0)).ok());
  ASSERT_TRUE(drcr.register_component(sink_descriptor()).ok());
  engine.run_until(milliseconds(500));
  const rtos::Task* task = kernel.find_task("snk");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->state, rtos::TaskState::kWaitingMailbox);
  // ~5 events in 500ms at 10 Hz; each costs 50us.
  EXPECT_NEAR(static_cast<double>(task->stats.cpu_time),
              static_cast<double>(sink->received.size()) * 50'000.0, 1.0);
}

TEST_F(MailboxPortFixture, SlowConsumerDropsWhenMailboxFull) {
  // Sink admits but its jobs take longer than the production period, so the
  // 16-slot mailbox eventually overflows and the producer's sends fail fast
  // (asynchronous contract: the producer never blocks).
  class SlowSink : public RtComponent {
   public:
    rtos::TaskCoro run(JobContext& job) override {
      while (job.active()) {
        auto message = co_await job.receive("events");
        if (!message.has_value()) continue;
        co_await job.consume(milliseconds(25));  // slower than 100 Hz
      }
    }
  };
  drcr.factories().register_factory(
      "mbx.Slow", [] { return std::make_unique<SlowSink>(); });
  ComponentDescriptor slow = sink_descriptor();
  slow.bincode = "mbx.Slow";
  ASSERT_TRUE(drcr.register_component(source_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(std::move(slow)).ok());
  engine.run_until(seconds(1));
  EXPECT_GT(source->dropped, 0);
  EXPECT_GT(kernel.mailbox_find("events")->dropped_count(), 0u);
  // The producer's own schedule never degraded (async send).
  EXPECT_EQ(kernel.find_task("src")->stats.deadline_misses, 0u);
}

TEST_F(MailboxPortFixture, SinkDeactivationLeavesProducerRunning) {
  ASSERT_TRUE(drcr.register_component(source_descriptor()).ok());
  ASSERT_TRUE(drcr.register_component(sink_descriptor()).ok());
  engine.run_until(milliseconds(50));
  ASSERT_TRUE(drcr.unregister_component("snk").ok());
  // Producer owns the mailbox port; it keeps running (a consumer is not a
  // functional dependency of the producer).
  EXPECT_EQ(drcr.state_of("src").value(), ComponentState::kActive);
  engine.run_until(milliseconds(100));
  EXPECT_GT(kernel.find_task("src")->stats.activations, 8u);
}

// ---------------------------------------------------------------------------
// Kernel-level edge semantics of the ring-buffer/handoff mailbox: the cases
// the component-level tests above never hit.
// ---------------------------------------------------------------------------

/// Parks an aperiodic receiver on `mailbox`; `*out` records the payload (or
/// "<none>") once it resumes.
TaskId park_receiver(rtos::RtKernel& kernel, rtos::Mailbox& mailbox,
                     std::string name, std::string* out) {
  auto id = kernel.create_task(
      rtos::TaskParams{.name = std::move(name),
                       .type = rtos::TaskType::kAperiodic},
      [&mailbox, out](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        auto message = co_await ctx.receive(mailbox);
        *out = message ? rtos::message_to_string(*message) : "<none>";
      });
  EXPECT_TRUE(kernel.start_task(id.value()).ok());
  return id.value();
}

TEST(MailboxEdge, SendToFullMailboxHandsOffToWaitingReceiver) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  // Capacity 0: the queue is permanently full, so a send can only succeed
  // when a receiver is already parked — the purest full-with-waiter case.
  auto mailbox = kernel.mailbox_create("rdv", 0);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_TRUE(mailbox.value()->full());

  std::string received;
  park_receiver(kernel, *mailbox.value(), "rx", &received);
  engine.run_until(milliseconds(1));

  EXPECT_TRUE(
      kernel.mailbox_send(*mailbox.value(), rtos::message_from_string("hot")));
  engine.run_until(milliseconds(2));
  EXPECT_EQ(received, "hot");
  EXPECT_EQ(mailbox.value()->sent_count(), 1u);
  EXPECT_EQ(mailbox.value()->handoff_count(), 1u);
  EXPECT_EQ(mailbox.value()->dropped_count(), 0u);  // full queue never charged
  EXPECT_EQ(mailbox.value()->size(), 0u);
}

TEST(MailboxEdge, ZeroCapacityMailboxIsRendezvousOnly) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("rdv", 0);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_EQ(mailbox.value()->capacity(), 0u);

  // No receiver parked: the send has nowhere to go and is dropped.
  EXPECT_FALSE(
      kernel.mailbox_send(*mailbox.value(), rtos::message_from_string("x")));
  EXPECT_EQ(mailbox.value()->dropped_count(), 1u);
  EXPECT_EQ(mailbox.value()->sent_count(), 0u);
  EXPECT_FALSE(kernel.mailbox_try_receive(*mailbox.value()).has_value());
  EXPECT_TRUE(mailbox.value()->empty());
}

TEST(MailboxEdge, BlockedReceiversAreHandedMessagesFifo) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  ASSERT_TRUE(mailbox.ok());

  std::string first;
  std::string second;
  std::string third;
  park_receiver(kernel, *mailbox.value(), "rx0", &first);
  engine.run_until(engine.now() + 1'000);  // deterministic park order
  park_receiver(kernel, *mailbox.value(), "rx1", &second);
  engine.run_until(engine.now() + 1'000);
  park_receiver(kernel, *mailbox.value(), "rx2", &third);
  engine.run_until(engine.now() + 1'000);
  EXPECT_EQ(mailbox.value()->waiting_count(), 3u);

  for (const char* payload : {"m0", "m1", "m2"}) {
    EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(),
                                    rtos::message_from_string(payload)));
  }
  engine.run_until(engine.now() + milliseconds(1));
  // Oldest waiter first; every delivery bypassed the queue.
  EXPECT_EQ(first, "m0");
  EXPECT_EQ(second, "m1");
  EXPECT_EQ(third, "m2");
  EXPECT_EQ(mailbox.value()->handoff_count(), 3u);
  EXPECT_EQ(mailbox.value()->size(), 0u);
}

TEST(MailboxEdge, TimeoutFiringAtSendInstantWinsTheRace) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  ASSERT_TRUE(mailbox.ok());

  bool got_message = true;
  SimTime resumed_at = -1;
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "rx", .type = rtos::TaskType::kAperiodic},
      [&](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        auto message =
            co_await ctx.receive_timed(*mailbox.value(), milliseconds(3));
        got_message = message.has_value();
        resumed_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));

  // A send lands at exactly the timeout instant. The timeout event was
  // scheduled when the receiver blocked, i.e. before the send's event, so at
  // equal timestamps it fires first: the receiver resumes empty-handed and
  // the message is queued, not handed off. Pinned as the deterministic
  // resolution of this race.
  engine.schedule_at(milliseconds(3), [&] {
    EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(),
                                    rtos::message_from_string("late")));
  });
  engine.run_until(milliseconds(10));

  EXPECT_FALSE(got_message);
  EXPECT_EQ(resumed_at, milliseconds(3));
  EXPECT_EQ(mailbox.value()->size(), 1u);
  EXPECT_EQ(mailbox.value()->sent_count(), 1u);
  EXPECT_EQ(mailbox.value()->handoff_count(), 0u);
}

}  // namespace
}  // namespace drt::drcom
