// Hybrid component tests: activation/rollback, ports, the asynchronous
// management command channel (§3.2), soft suspension, properties, status.
#include <gtest/gtest.h>

#include "drcom/hybrid.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// Periodic producer: writes an incrementing counter to out-SHM "count".
class Counter : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    std::int32_t value = 0;
    while (job.active()) {
      co_await job.consume(microseconds(20));
      job.write_i32("count", 0, ++value);
      co_await job.next_cycle();
    }
  }
  void init(JobContext&) override { ++init_calls; }
  void uninit() override { ++uninit_calls; }

  int init_calls = 0;
  int uninit_calls = 0;
};

ComponentDescriptor counter_descriptor(double hz = 1000.0) {
  ComponentDescriptor d;
  d.name = "cnt";
  d.bincode = "test.Counter";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.1;
  d.periodic = PeriodicSpec{hz, 0, 3};
  d.ports.push_back({PortDirection::kOut, "count", PortInterface::kShm,
                     rtos::DataType::kInteger, 4});
  d.properties.set("gain", std::int64_t{2});
  return d;
}

struct HybridFixture : public ::testing::Test {
  HybridFixture() : kernel(engine, quiet_config()) {}

  HybridComponent make(ComponentDescriptor descriptor,
                       std::unique_ptr<RtComponent> impl = nullptr) {
    if (impl == nullptr) impl = std::make_unique<Counter>();
    return HybridComponent(std::move(descriptor), kernel, std::move(impl));
  }

  rtos::SimEngine engine;
  rtos::RtKernel kernel;
};

TEST_F(HybridFixture, ActivateCreatesPortsChannelAndTask) {
  auto counter = std::make_unique<Counter>();
  Counter* raw = counter.get();
  HybridComponent hybrid = make(counter_descriptor(), std::move(counter));
  ASSERT_TRUE(hybrid.activate().ok());
  EXPECT_TRUE(hybrid.is_active());
  EXPECT_EQ(raw->init_calls, 1);
  EXPECT_NE(kernel.shm_find("count"), nullptr);
  EXPECT_NE(kernel.mailbox_find("cnt.cmd"), nullptr);
  EXPECT_NE(kernel.mailbox_find("cnt.rsp"), nullptr);
  const rtos::Task* task = kernel.find_task(hybrid.task_id());
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->params.name, "cnt");
  EXPECT_EQ(task->params.priority, 3);
  EXPECT_EQ(task->params.period, milliseconds(1));
}

TEST_F(HybridFixture, TaskProducesDataEachPeriod) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  engine.run_until(milliseconds(10));
  const rtos::Shm* shm = kernel.shm_find("count");
  ASSERT_NE(shm, nullptr);
  EXPECT_GE(shm->read_i32(0).value(), 9);
  EXPECT_GE(shm->version(), 9u);
}

TEST_F(HybridFixture, DeactivateDestroysEverythingAndRunsUninit) {
  auto counter = std::make_unique<Counter>();
  Counter* raw = counter.get();
  HybridComponent hybrid = make(counter_descriptor(), std::move(counter));
  ASSERT_TRUE(hybrid.activate().ok());
  engine.run_until(milliseconds(5));
  hybrid.deactivate();
  EXPECT_FALSE(hybrid.is_active());
  EXPECT_EQ(raw->uninit_calls, 1);
  EXPECT_EQ(kernel.shm_find("count"), nullptr);
  EXPECT_EQ(kernel.mailbox_find("cnt.cmd"), nullptr);
  // Idempotent.
  hybrid.deactivate();
  EXPECT_EQ(raw->uninit_calls, 1);
}

TEST_F(HybridFixture, ActivationFailsOnPortConflictAndRollsBack) {
  ASSERT_TRUE(kernel.shm_create("count", 4).ok());  // name squatter
  HybridComponent hybrid = make(counter_descriptor());
  auto result = hybrid.activate();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "drcom.port_conflict");
  EXPECT_FALSE(hybrid.is_active());
  // No leaked channel mailboxes.
  EXPECT_EQ(kernel.mailbox_find("cnt.cmd"), nullptr);
}

TEST_F(HybridFixture, ActivationFailsOnMissingInport) {
  ComponentDescriptor d = counter_descriptor();
  d.ports.push_back({PortDirection::kIn, "feed", PortInterface::kShm,
                     rtos::DataType::kByte, 8});
  HybridComponent hybrid = make(std::move(d));
  auto result = hybrid.activate();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "drcom.unresolved_inport");
  // The out-port created before the failure was rolled back.
  EXPECT_EQ(kernel.shm_find("count"), nullptr);
}

TEST_F(HybridFixture, SuspendCommandParksTaskAtJobBoundary) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  engine.run_until(milliseconds(5));
  const auto count_before =
      kernel.shm_find("count")->read_i32(0).value();
  ASSERT_TRUE(hybrid.send_command("SUSPEND").ok());
  engine.run_until(milliseconds(30));
  EXPECT_TRUE(hybrid.soft_suspended());
  const auto count_suspended = kernel.shm_find("count")->read_i32(0).value();
  // At most one more job ran (the one in flight when the command arrived).
  EXPECT_LE(count_suspended, count_before + 2);
  // Task is parked on the command mailbox, consuming nothing.
  EXPECT_EQ(kernel.find_task(hybrid.task_id())->state,
            rtos::TaskState::kWaitingMailbox);
  ASSERT_TRUE(hybrid.send_command("RESUME").ok());
  engine.run_until(milliseconds(60));
  EXPECT_FALSE(hybrid.soft_suspended());
  EXPECT_GT(kernel.shm_find("count")->read_i32(0).value(),
            count_suspended + 10);
  const auto responses = hybrid.drain_responses();
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0], "OK SUSPEND");
  EXPECT_EQ(responses[1], "OK RESUME");
}

TEST_F(HybridFixture, SetPropertyAppliedAtJobBoundaryPreservingType) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  EXPECT_EQ(hybrid.live_property("gain").value(), "2");
  ASSERT_TRUE(hybrid.send_command("SET gain 7").ok());
  // Not applied until the RT side reaches its job boundary.
  engine.run_until(milliseconds(3));
  EXPECT_EQ(hybrid.live_property("gain").value(), "7");
  const auto responses = hybrid.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0], "OK SET gain");
}

TEST_F(HybridFixture, SetPropertyRejectsTypeMismatch) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  ASSERT_TRUE(hybrid.send_command("SET gain banana").ok());
  engine.run_until(milliseconds(3));
  EXPECT_EQ(hybrid.live_property("gain").value(), "2");  // unchanged
  const auto responses = hybrid.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0], "ERR SET gain: expected integer");
}

TEST_F(HybridFixture, UnknownAndMalformedCommands) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  ASSERT_TRUE(hybrid.send_command("DANCE").ok());
  ASSERT_TRUE(hybrid.send_command("SET onlykey").ok());
  engine.run_until(milliseconds(3));
  const auto responses = hybrid.drain_responses();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0], "ERR unknown command: DANCE");
  EXPECT_EQ(responses[1], "ERR SET needs key and value");
}

TEST_F(HybridFixture, StatusReflectsKernelTask) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  engine.run_until(milliseconds(20));
  const ComponentStatus status = hybrid.status();
  EXPECT_EQ(status.component, "cnt");
  EXPECT_FALSE(status.soft_suspended);
  EXPECT_GE(status.stats.activations, 19u);
  EXPECT_EQ(status.stats.deadline_misses, 0u);
  EXPECT_EQ(status.latency.count, status.stats.activations);
  EXPECT_EQ(status.sampled_at, engine.now());
}

TEST_F(HybridFixture, CommandsToInactiveComponentFail) {
  HybridComponent hybrid = make(counter_descriptor());
  auto result = hybrid.send_command("SUSPEND");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "drcom.not_active");
}

TEST_F(HybridFixture, ManagementServiceForwards) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  HybridManagement management(hybrid);
  EXPECT_EQ(management.component_name(), "cnt");
  ASSERT_TRUE(management.set_property("gain", "11").ok());
  engine.run_until(milliseconds(3));
  EXPECT_EQ(management.get_property("gain").value(), "11");
  EXPECT_FALSE(management.get_property("nope").has_value());
  ASSERT_TRUE(management.suspend().ok());
  engine.run_until(milliseconds(6));
  EXPECT_TRUE(management.get_status().soft_suspended);
  ASSERT_TRUE(management.resume().ok());
  engine.run_until(milliseconds(9));
  EXPECT_FALSE(management.get_status().soft_suspended);
}

TEST_F(HybridFixture, StopCommandEndsTask) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  engine.run_until(milliseconds(3));
  ASSERT_TRUE(hybrid.send_command("STOP").ok());
  engine.run_until(milliseconds(10));
  EXPECT_EQ(kernel.find_task(hybrid.task_id())->state,
            rtos::TaskState::kFinished);
}

/// Producer/consumer pair communicating over a SHM port, as §3.3 prescribes:
/// inter-component traffic goes through the RT kernel, not the registry.
class Doubler : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      const auto input = job.read_i32("count", 0);
      if (input.has_value()) job.write_i32("twice", 0, *input * 2);
      co_await job.next_cycle();
    }
  }
};

TEST_F(HybridFixture, InterComponentShmPipeline) {
  HybridComponent producer = make(counter_descriptor());
  ASSERT_TRUE(producer.activate().ok());

  ComponentDescriptor consumer_desc;
  consumer_desc.name = "dbl";
  consumer_desc.bincode = "test.Doubler";
  consumer_desc.type = rtos::TaskType::kPeriodic;
  consumer_desc.periodic = PeriodicSpec{1000.0, 0, 5};
  consumer_desc.ports.push_back({PortDirection::kIn, "count",
                                 PortInterface::kShm,
                                 rtos::DataType::kInteger, 4});
  consumer_desc.ports.push_back({PortDirection::kOut, "twice",
                                 PortInterface::kShm,
                                 rtos::DataType::kInteger, 4});
  HybridComponent consumer =
      make(std::move(consumer_desc), std::make_unique<Doubler>());
  ASSERT_TRUE(consumer.activate().ok());

  engine.run_until(milliseconds(20));
  const auto count = kernel.shm_find("count")->read_i32(0).value();
  const auto twice = kernel.shm_find("twice")->read_i32(0).value();
  EXPECT_GT(count, 10);
  EXPECT_NEAR(twice, count * 2, 4);  // consumer may lag one period
}

TEST_F(HybridFixture, PortAccessRestrictedToDeclaredDirection) {
  HybridComponent hybrid = make(counter_descriptor());
  ASSERT_TRUE(hybrid.activate().ok());
  engine.run_until(milliseconds(2));
  // "count" is an OUT port: reading it as an IN port must fail (nullptr).
  // We can only check through the public JobContext of a running instance —
  // exercised indirectly: read_i32 on the out port name returns nullopt.
  // (Direct check: descriptor knows the port is out.)
  EXPECT_EQ(hybrid.descriptor().find_port("count")->direction,
            PortDirection::kOut);
}

}  // namespace
}  // namespace drt::drcom
