// IPC semantics: shared memory segments and mailboxes, including blocking
// receive, timeouts, direct handoff and destruction while waited on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

// ------------------------------------------------------------------- Shm --

TEST(Shm, RawReadWriteRoundTrip) {
  Shm shm("seg", 16);
  const std::byte data[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                             std::byte{4}};
  EXPECT_TRUE(shm.write(4, data, 100));
  std::byte out[4] = {};
  EXPECT_TRUE(shm.read(4, out));
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(out[3], std::byte{4});
  EXPECT_EQ(shm.version(), 1u);
  EXPECT_EQ(shm.last_write_time(), 100);
}

TEST(Shm, OutOfRangeAccessFailsWithoutEffect) {
  Shm shm("seg", 8);
  const std::byte data[4] = {};
  EXPECT_FALSE(shm.write(6, data));  // 6+4 > 8
  std::byte out[4] = {};
  EXPECT_FALSE(shm.read(5, out));
  EXPECT_EQ(shm.version(), 0u);
}

TEST(Shm, TypedInt32Accessors) {
  Shm shm("seg", 16);  // 4 int32 slots
  EXPECT_TRUE(shm.write_i32(0, -123));
  EXPECT_TRUE(shm.write_i32(3, 456));
  EXPECT_EQ(shm.read_i32(0).value(), -123);
  EXPECT_EQ(shm.read_i32(3).value(), 456);
  EXPECT_FALSE(shm.write_i32(4, 1));  // out of range
  EXPECT_FALSE(shm.read_i32(4).has_value());
}

TEST(Shm, HugeOffsetDoesNotWrapAround) {
  // Regression: offset + size used to be computed as a sum, which wraps for
  // offsets near SIZE_MAX and made the bounds check pass.
  Shm shm("seg", 16);
  const std::byte data[4] = {std::byte{0xAB}, std::byte{0xCD}, std::byte{0xEF},
                             std::byte{0x01}};
  EXPECT_FALSE(shm.write(SIZE_MAX - 1, data));
  EXPECT_FALSE(shm.write(SIZE_MAX, data));
  std::byte out[4] = {};
  EXPECT_FALSE(shm.read(SIZE_MAX - 1, out));
  EXPECT_FALSE(shm.read(SIZE_MAX, out));
  EXPECT_EQ(shm.version(), 0u);
  // Offset just past the end with an empty span: still rejected/accepted
  // consistently — offset == size with zero bytes is a legal no-op write.
  EXPECT_TRUE(shm.write(16, {}));
  EXPECT_FALSE(shm.write(17, {}));
}

TEST(Shm, Int32SpanBulkTransfer) {
  Shm shm("seg", 32);  // 8 int32 slots
  const std::int32_t values[4] = {10, -20, 30, -40};
  EXPECT_TRUE(shm.write_i32_span(2, values, 77));
  std::int32_t out[4] = {};
  EXPECT_TRUE(shm.read_i32_span(2, out));
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[3], -40);
  // Element-wise accessors see the same bytes (one memcpy, same layout).
  EXPECT_EQ(shm.read_i32(2).value(), 10);
  EXPECT_EQ(shm.read_i32(5).value(), -40);
  EXPECT_EQ(shm.version(), 1u);  // one write, one version bump
  EXPECT_EQ(shm.last_write_time(), 77);
  // Out of range: 5 + 4 slots > 8, and a wrapping index.
  EXPECT_FALSE(shm.write_i32_span(5, values));
  EXPECT_FALSE(shm.write_i32_span(SIZE_MAX / 4, values));
  EXPECT_FALSE(shm.read_i32_span(5, out));
}

TEST(Shm, VersionCountsWrites) {
  Shm shm("seg", 8);
  for (int i = 0; i < 5; ++i) shm.write_i32(0, i);
  EXPECT_EQ(shm.version(), 5u);
}

TEST(ShmKernel, CreateFindDelete) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto shm = kernel.shm_create("images", 400);
  ASSERT_TRUE(shm.ok());
  EXPECT_EQ(kernel.shm_find("images"), shm.value());
  EXPECT_EQ(kernel.shm_find("other"), nullptr);
  // Duplicate name rejected (the port-conflict mechanism).
  EXPECT_FALSE(kernel.shm_create("images", 100).ok());
  EXPECT_TRUE(kernel.shm_delete("images").ok());
  EXPECT_EQ(kernel.shm_find("images"), nullptr);
  EXPECT_FALSE(kernel.shm_delete("images").ok());
}

TEST(ShmKernel, RejectsZeroSize) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  EXPECT_FALSE(kernel.shm_create("bad", 0).ok());
}

// Untrusted descriptors reach these calls, so absurd sizes must come back
// as structured errors instead of attempting a giant allocation.
TEST(ShmKernel, RejectsSizeAboveCap) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto shm = kernel.shm_create("huge", kMaxShmBytes + 1);
  ASSERT_FALSE(shm.ok());
  EXPECT_EQ(shm.error().code, "rtos.bad_shm");
  EXPECT_TRUE(kernel.shm_create("edge", kMaxShmBytes).ok());
}

TEST(Mailbox, RejectsCapacityAboveCap) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("huge", kMaxMailboxCapacity + 1);
  ASSERT_FALSE(mailbox.ok());
  EXPECT_EQ(mailbox.error().code, "rtos.bad_mailbox");
  EXPECT_TRUE(kernel.mailbox_create("edge", kMaxMailboxCapacity).ok());
}

// --------------------------------------------------- Message/MessagePool --

TEST(Message, SmallPayloadStaysInline) {
  const std::string text(Message::kInlineCapacity, 'a');
  const Message message = message_from_string(text);
  EXPECT_TRUE(message.inline_storage());
  EXPECT_EQ(message_to_string(message), text);
  EXPECT_TRUE(Message().inline_storage());
}

TEST(Message, LargePayloadUsesPooledSlab) {
  const auto before = MessagePool::instance().stats();
  const std::string text(Message::kInlineCapacity + 1, 'b');
  const Message message = message_from_string(text);
  EXPECT_FALSE(message.inline_storage());
  EXPECT_EQ(message_to_string(message), text);
  const auto after = MessagePool::instance().stats();
  EXPECT_EQ(after.live_slabs, before.live_slabs + 1);
}

TEST(Message, CopySharesSlabAndMoveTransfersIt) {
  const auto baseline = MessagePool::instance().stats();
  const std::string text(100, 'c');
  Message original = message_from_string(text);
  const void* payload = original.data();

  Message copy = original;  // refcount bump, no new slab, no byte copy
  EXPECT_EQ(copy.data(), payload);
  auto stats = MessagePool::instance().stats();
  EXPECT_EQ(stats.live_slabs, baseline.live_slabs + 1);

  Message moved = std::move(original);  // pointer transfer
  EXPECT_EQ(moved.data(), payload);
  EXPECT_EQ(original.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(message_to_string(moved), text);
  EXPECT_EQ(message_to_string(copy), text);

  // Slab survives until the last owner goes away.
  moved = Message();
  stats = MessagePool::instance().stats();
  EXPECT_EQ(stats.live_slabs, baseline.live_slabs + 1);
  copy = Message();
  stats = MessagePool::instance().stats();
  EXPECT_EQ(stats.live_slabs, baseline.live_slabs);
}

TEST(MessagePool, ReleasedSlabsAreReusedNotReallocated) {
  auto& pool = MessagePool::instance();
  pool.trim();
  const auto before = pool.stats();
  for (int i = 0; i < 100; ++i) {
    Message message(256);
    std::memset(message.data(), i, message.size());
  }
  const auto after = pool.stats();
  // First iteration allocates the 256-byte-class slab; the other 99 reuse it.
  EXPECT_EQ(after.heap_allocations, before.heap_allocations + 1);
  EXPECT_EQ(after.reuses, before.reuses + 99);
  EXPECT_EQ(after.live_slabs, before.live_slabs);
  EXPECT_GE(after.free_slabs, 1u);
  pool.trim();
  EXPECT_EQ(pool.stats().free_slabs, 0u);
  EXPECT_EQ(pool.stats().free_bytes, 0u);
}

TEST(MessagePool, OversizePayloadsBypassTheCache) {
  auto& pool = MessagePool::instance();
  const auto before = pool.stats();
  {
    Message huge(MessagePool::kMaxPooledBytes + 1);
    EXPECT_FALSE(huge.inline_storage());
    EXPECT_EQ(huge.size(), MessagePool::kMaxPooledBytes + 1);
  }
  const auto after = pool.stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.free_slabs, before.free_slabs);  // not cached on release
  EXPECT_EQ(after.live_slabs, before.live_slabs);
}

// --------------------------------------------------------------- Mailbox --

TEST(Mailbox, PushPopFifoOrder) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("a")));
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("b")));
  EXPECT_EQ(message_to_string(*kernel.mailbox_try_receive(*mailbox.value())),
            "a");
  EXPECT_EQ(message_to_string(*kernel.mailbox_try_receive(*mailbox.value())),
            "b");
  EXPECT_FALSE(kernel.mailbox_try_receive(*mailbox.value()).has_value());
}

TEST(Mailbox, SendFailsWhenFull) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 2);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("1")));
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("2")));
  EXPECT_FALSE(kernel.mailbox_send(*mailbox.value(), message_from_string("3")));
  EXPECT_EQ(mailbox.value()->dropped_count(), 1u);
  EXPECT_EQ(mailbox.value()->sent_count(), 2u);
}

TEST(Mailbox, BlockingReceiveWakesOnSend) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  ASSERT_TRUE(mailbox.ok());
  std::string received;
  SimTime received_at = -1;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        received = message_to_string(*message);
        received_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kWaitingMailbox);
  engine.schedule_at(milliseconds(5), [&] {
    kernel.mailbox_send(*mailbox.value(), message_from_string("hello"));
  });
  engine.run_until(milliseconds(10));
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(received_at, milliseconds(5));
}

TEST(Mailbox, ReceiveReturnsImmediatelyWhenMessagePending) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  kernel.mailbox_send(*mailbox.value(), message_from_string("early"));
  std::string received;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        received = message_to_string(*message);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(received, "early");
}

TEST(Mailbox, TimedReceiveTimesOut) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  bool got_message = true;
  SimTime resumed_at = -1;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message =
            co_await ctx.receive_timed(*mailbox.value(), milliseconds(3));
        got_message = message.has_value();
        resumed_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(10));
  EXPECT_FALSE(got_message);
  EXPECT_EQ(resumed_at, milliseconds(3));
}

TEST(Mailbox, TimedReceiveDeliversBeforeTimeout) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  std::string received;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message =
            co_await ctx.receive_timed(*mailbox.value(), milliseconds(30));
        if (message) received = message_to_string(*message);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.schedule_at(milliseconds(2), [&] {
    kernel.mailbox_send(*mailbox.value(), message_from_string("fast"));
  });
  engine.run_until(milliseconds(50));
  EXPECT_EQ(received, "fast");
  // The timeout event must have been cancelled: engine drains fully except
  // the load-model events.
}

TEST(Mailbox, MultipleWaitersServedFifo) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  std::vector<std::string> log;
  for (int i = 0; i < 3; ++i) {
    auto id = kernel.create_task(
        TaskParams{.name = "rx" + std::to_string(i),
                   .type = TaskType::kAperiodic},
        [&, i](TaskContext& ctx) -> TaskCoro {
          auto message = co_await ctx.receive(*mailbox.value());
          log.push_back("rx" + std::to_string(i) + ":" +
                        message_to_string(*message));
        });
    ASSERT_TRUE(kernel.start_task(id.value()).ok());
    engine.run_until(engine.now() + 1'000);  // deterministic waiting order
  }
  for (int i = 0; i < 3; ++i) {
    kernel.mailbox_send(*mailbox.value(),
                        message_from_string("m" + std::to_string(i)));
  }
  engine.run_until(engine.now() + milliseconds(1));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "rx0:m0");
  EXPECT_EQ(log[1], "rx1:m1");
  EXPECT_EQ(log[2], "rx2:m2");
}

TEST(Mailbox, DeleteWakesWaitersWithNoMessage) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  bool resumed_empty = false;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        resumed_empty = !message.has_value();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_TRUE(kernel.mailbox_delete("mbx").ok());
  engine.run_until(milliseconds(2));
  EXPECT_TRUE(resumed_empty);
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
}

TEST(Mailbox, SuspendedReceiverDoesNotStealHandoff) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  std::string first_receiver;
  auto a = kernel.create_task(
      TaskParams{.name = "a", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        if (message && first_receiver.empty()) first_receiver = "a";
      });
  auto b = kernel.create_task(
      TaskParams{.name = "b", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        if (message && first_receiver.empty()) first_receiver = "b";
      });
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  engine.run_until(engine.now() + 1'000);
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(engine.now() + 1'000);
  // a waits first but gets suspended; the handoff must go to b.
  ASSERT_TRUE(kernel.suspend_task(a.value()).ok());
  kernel.mailbox_send(*mailbox.value(), message_from_string("x"));
  engine.run_until(engine.now() + milliseconds(1));
  EXPECT_EQ(first_receiver, "b");
}

TEST(Mailbox, StringMessageHelpersRoundTrip) {
  const Message message = message_from_string("hello world");
  EXPECT_EQ(message.size(), 11u);
  EXPECT_EQ(message_to_string(message), "hello world");
  EXPECT_EQ(message_to_string(message_from_string("")), "");
}

}  // namespace
}  // namespace drt::rtos
