// IPC semantics: shared memory segments and mailboxes, including blocking
// receive, timeouts, direct handoff and destruction while waited on.
#include <gtest/gtest.h>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

// ------------------------------------------------------------------- Shm --

TEST(Shm, RawReadWriteRoundTrip) {
  Shm shm("seg", 16);
  const std::byte data[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                             std::byte{4}};
  EXPECT_TRUE(shm.write(4, data, 100));
  std::byte out[4] = {};
  EXPECT_TRUE(shm.read(4, out));
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(out[3], std::byte{4});
  EXPECT_EQ(shm.version(), 1u);
  EXPECT_EQ(shm.last_write_time(), 100);
}

TEST(Shm, OutOfRangeAccessFailsWithoutEffect) {
  Shm shm("seg", 8);
  const std::byte data[4] = {};
  EXPECT_FALSE(shm.write(6, data));  // 6+4 > 8
  std::byte out[4] = {};
  EXPECT_FALSE(shm.read(5, out));
  EXPECT_EQ(shm.version(), 0u);
}

TEST(Shm, TypedInt32Accessors) {
  Shm shm("seg", 16);  // 4 int32 slots
  EXPECT_TRUE(shm.write_i32(0, -123));
  EXPECT_TRUE(shm.write_i32(3, 456));
  EXPECT_EQ(shm.read_i32(0).value(), -123);
  EXPECT_EQ(shm.read_i32(3).value(), 456);
  EXPECT_FALSE(shm.write_i32(4, 1));  // out of range
  EXPECT_FALSE(shm.read_i32(4).has_value());
}

TEST(Shm, VersionCountsWrites) {
  Shm shm("seg", 8);
  for (int i = 0; i < 5; ++i) shm.write_i32(0, i);
  EXPECT_EQ(shm.version(), 5u);
}

TEST(ShmKernel, CreateFindDelete) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto shm = kernel.shm_create("images", 400);
  ASSERT_TRUE(shm.ok());
  EXPECT_EQ(kernel.shm_find("images"), shm.value());
  EXPECT_EQ(kernel.shm_find("other"), nullptr);
  // Duplicate name rejected (the port-conflict mechanism).
  EXPECT_FALSE(kernel.shm_create("images", 100).ok());
  EXPECT_TRUE(kernel.shm_delete("images").ok());
  EXPECT_EQ(kernel.shm_find("images"), nullptr);
  EXPECT_FALSE(kernel.shm_delete("images").ok());
}

TEST(ShmKernel, RejectsZeroSize) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  EXPECT_FALSE(kernel.shm_create("bad", 0).ok());
}

// --------------------------------------------------------------- Mailbox --

TEST(Mailbox, PushPopFifoOrder) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("a")));
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("b")));
  EXPECT_EQ(message_to_string(*kernel.mailbox_try_receive(*mailbox.value())),
            "a");
  EXPECT_EQ(message_to_string(*kernel.mailbox_try_receive(*mailbox.value())),
            "b");
  EXPECT_FALSE(kernel.mailbox_try_receive(*mailbox.value()).has_value());
}

TEST(Mailbox, SendFailsWhenFull) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 2);
  ASSERT_TRUE(mailbox.ok());
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("1")));
  EXPECT_TRUE(kernel.mailbox_send(*mailbox.value(), message_from_string("2")));
  EXPECT_FALSE(kernel.mailbox_send(*mailbox.value(), message_from_string("3")));
  EXPECT_EQ(mailbox.value()->dropped_count(), 1u);
  EXPECT_EQ(mailbox.value()->sent_count(), 2u);
}

TEST(Mailbox, BlockingReceiveWakesOnSend) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  ASSERT_TRUE(mailbox.ok());
  std::string received;
  SimTime received_at = -1;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        received = message_to_string(*message);
        received_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kWaitingMailbox);
  engine.schedule_at(milliseconds(5), [&] {
    kernel.mailbox_send(*mailbox.value(), message_from_string("hello"));
  });
  engine.run_until(milliseconds(10));
  EXPECT_EQ(received, "hello");
  EXPECT_EQ(received_at, milliseconds(5));
}

TEST(Mailbox, ReceiveReturnsImmediatelyWhenMessagePending) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  kernel.mailbox_send(*mailbox.value(), message_from_string("early"));
  std::string received;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        received = message_to_string(*message);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(received, "early");
}

TEST(Mailbox, TimedReceiveTimesOut) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  bool got_message = true;
  SimTime resumed_at = -1;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message =
            co_await ctx.receive_timed(*mailbox.value(), milliseconds(3));
        got_message = message.has_value();
        resumed_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(10));
  EXPECT_FALSE(got_message);
  EXPECT_EQ(resumed_at, milliseconds(3));
}

TEST(Mailbox, TimedReceiveDeliversBeforeTimeout) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  std::string received;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message =
            co_await ctx.receive_timed(*mailbox.value(), milliseconds(30));
        if (message) received = message_to_string(*message);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.schedule_at(milliseconds(2), [&] {
    kernel.mailbox_send(*mailbox.value(), message_from_string("fast"));
  });
  engine.run_until(milliseconds(50));
  EXPECT_EQ(received, "fast");
  // The timeout event must have been cancelled: engine drains fully except
  // the load-model events.
}

TEST(Mailbox, MultipleWaitersServedFifo) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  std::vector<std::string> log;
  for (int i = 0; i < 3; ++i) {
    auto id = kernel.create_task(
        TaskParams{.name = "rx" + std::to_string(i),
                   .type = TaskType::kAperiodic},
        [&, i](TaskContext& ctx) -> TaskCoro {
          auto message = co_await ctx.receive(*mailbox.value());
          log.push_back("rx" + std::to_string(i) + ":" +
                        message_to_string(*message));
        });
    ASSERT_TRUE(kernel.start_task(id.value()).ok());
    engine.run_until(engine.now() + 1'000);  // deterministic waiting order
  }
  for (int i = 0; i < 3; ++i) {
    kernel.mailbox_send(*mailbox.value(),
                        message_from_string("m" + std::to_string(i)));
  }
  engine.run_until(engine.now() + milliseconds(1));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "rx0:m0");
  EXPECT_EQ(log[1], "rx1:m1");
  EXPECT_EQ(log[2], "rx2:m2");
}

TEST(Mailbox, DeleteWakesWaitersWithNoMessage) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  bool resumed_empty = false;
  auto id = kernel.create_task(
      TaskParams{.name = "rx", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        resumed_empty = !message.has_value();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_TRUE(kernel.mailbox_delete("mbx").ok());
  engine.run_until(milliseconds(2));
  EXPECT_TRUE(resumed_empty);
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
}

TEST(Mailbox, SuspendedReceiverDoesNotStealHandoff) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto mailbox = kernel.mailbox_create("mbx", 4);
  std::string first_receiver;
  auto a = kernel.create_task(
      TaskParams{.name = "a", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        if (message && first_receiver.empty()) first_receiver = "a";
      });
  auto b = kernel.create_task(
      TaskParams{.name = "b", .type = TaskType::kAperiodic},
      [&](TaskContext& ctx) -> TaskCoro {
        auto message = co_await ctx.receive(*mailbox.value());
        if (message && first_receiver.empty()) first_receiver = "b";
      });
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  engine.run_until(engine.now() + 1'000);
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(engine.now() + 1'000);
  // a waits first but gets suspended; the handoff must go to b.
  ASSERT_TRUE(kernel.suspend_task(a.value()).ok());
  kernel.mailbox_send(*mailbox.value(), message_from_string("x"));
  engine.run_until(engine.now() + milliseconds(1));
  EXPECT_EQ(first_receiver, "b");
}

TEST(Mailbox, StringMessageHelpersRoundTrip) {
  const Message message = message_from_string("hello world");
  EXPECT_EQ(message.size(), 11u);
  EXPECT_EQ(message_to_string(message), "hello world");
  EXPECT_EQ(message_to_string(message_from_string("")), "");
}

}  // namespace
}  // namespace drt::rtos
