// Counting semaphore semantics: P/V, FIFO wakeup, timeouts, suspension and
// deletion interactions.
#include <gtest/gtest.h>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

TaskParams aperiodic(std::string name, int priority = 10) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kAperiodic;
  params.priority = priority;
  return params;
}

TEST(Semaphore, CreateFindDeleteAndValidation) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto sem = kernel.semaphore_create("mutex", 1);
  ASSERT_TRUE(sem.ok());
  EXPECT_EQ(kernel.semaphore_find("mutex"), sem.value());
  EXPECT_FALSE(kernel.semaphore_create("mutex", 1).ok());
  EXPECT_FALSE(kernel.semaphore_create("neg", -1).ok());
  EXPECT_TRUE(kernel.semaphore_delete("mutex").ok());
  EXPECT_EQ(kernel.semaphore_find("mutex"), nullptr);
  EXPECT_FALSE(kernel.semaphore_delete("mutex").ok());
}

TEST(Semaphore, TryWaitDecrementsSignalIncrements) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 2).value();
  EXPECT_TRUE(kernel.semaphore_try_wait(*sem));
  EXPECT_TRUE(kernel.semaphore_try_wait(*sem));
  EXPECT_FALSE(kernel.semaphore_try_wait(*sem));
  kernel.semaphore_signal(*sem);
  EXPECT_EQ(sem->count(), 1);
  EXPECT_TRUE(kernel.semaphore_try_wait(*sem));
}

TEST(Semaphore, WaitBlocksUntilSignal) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 0).value();
  SimTime acquired_at = -1;
  auto id = kernel.create_task(
      aperiodic("w"), [&](TaskContext& ctx) -> TaskCoro {
        const bool acquired = co_await ctx.sem_wait(*sem);
        if (acquired) acquired_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(kernel.find_task(id.value())->state,
            TaskState::kWaitingSemaphore);
  engine.schedule_at(milliseconds(5), [&] { kernel.semaphore_signal(*sem); });
  engine.run_until(milliseconds(10));
  EXPECT_EQ(acquired_at, milliseconds(5));
  // Direct handoff: the count stays 0 (no double credit).
  EXPECT_EQ(sem->count(), 0);
}

TEST(Semaphore, NonZeroInitialCountAcquiresImmediately) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 1).value();
  SimTime acquired_at = -1;
  auto id = kernel.create_task(
      aperiodic("w"), [&](TaskContext& ctx) -> TaskCoro {
        (void)co_await ctx.sem_wait(*sem);
        acquired_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(acquired_at, 0);
}

TEST(Semaphore, FifoWakeup) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 0).value();
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    auto id = kernel.create_task(
        aperiodic("w" + std::to_string(i)),
        [&, i](TaskContext& ctx) -> TaskCoro {
          (void)co_await ctx.sem_wait(*sem);
          order.push_back("w" + std::to_string(i));
        });
    ASSERT_TRUE(kernel.start_task(id.value()).ok());
    engine.run_until(engine.now() + 1'000);
  }
  for (int i = 0; i < 3; ++i) kernel.semaphore_signal(*sem);
  engine.run_until(engine.now() + milliseconds(1));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "w0");
  EXPECT_EQ(order[1], "w1");
  EXPECT_EQ(order[2], "w2");
}

TEST(Semaphore, TimedWaitTimesOut) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 0).value();
  bool acquired = true;
  SimTime resumed_at = -1;
  auto id = kernel.create_task(
      aperiodic("w"), [&](TaskContext& ctx) -> TaskCoro {
        acquired = co_await ctx.sem_wait_timed(*sem, milliseconds(2));
        resumed_at = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(10));
  EXPECT_FALSE(acquired);
  EXPECT_EQ(resumed_at, milliseconds(2));
  EXPECT_EQ(sem->waiting_count(), 0u);
}

TEST(Semaphore, TimedWaitAcquiresBeforeTimeout) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 0).value();
  bool acquired = false;
  auto id = kernel.create_task(
      aperiodic("w"), [&](TaskContext& ctx) -> TaskCoro {
        acquired = co_await ctx.sem_wait_timed(*sem, milliseconds(20));
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.schedule_at(milliseconds(1), [&] { kernel.semaphore_signal(*sem); });
  engine.run_until(milliseconds(30));
  EXPECT_TRUE(acquired);
}

TEST(Semaphore, DeleteWakesWaitersUnacquired) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 0).value();
  bool acquired = true;
  auto id = kernel.create_task(
      aperiodic("w"), [&](TaskContext& ctx) -> TaskCoro {
        acquired = co_await ctx.sem_wait(*sem);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_TRUE(kernel.semaphore_delete("s").ok());
  engine.run_until(milliseconds(2));
  EXPECT_FALSE(acquired);
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
}

TEST(Semaphore, SuspendedWaiterSkippedBySignal) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* sem = kernel.semaphore_create("s", 0).value();
  std::string first;
  auto a = kernel.create_task(
      aperiodic("a"), [&](TaskContext& ctx) -> TaskCoro {
        if (co_await ctx.sem_wait(*sem); first.empty()) first = "a";
      });
  auto b = kernel.create_task(
      aperiodic("b"), [&](TaskContext& ctx) -> TaskCoro {
        if (co_await ctx.sem_wait(*sem); first.empty()) first = "b";
      });
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  engine.run_until(engine.now() + 1'000);
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(engine.now() + 1'000);
  ASSERT_TRUE(kernel.suspend_task(a.value()).ok());
  kernel.semaphore_signal(*sem);
  engine.run_until(engine.now() + milliseconds(1));
  EXPECT_EQ(first, "b");
  // Resumed a re-queues and gets the next signal.
  ASSERT_TRUE(kernel.resume_task(a.value()).ok());
  kernel.semaphore_signal(*sem);
  engine.run_until(engine.now() + milliseconds(1));
  EXPECT_EQ(kernel.find_task(a.value())->state, TaskState::kFinished);
}

TEST(Semaphore, MutexStyleCriticalSection) {
  // Two tasks alternating through a mutex: accesses never overlap.
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto* mutex = kernel.semaphore_create("mtx", 1).value();
  int inside = 0;
  int max_inside = 0;
  int entries = 0;
  auto body = [&](TaskContext& ctx) -> TaskCoro {
    for (int i = 0; i < 5; ++i) {
      (void)co_await ctx.sem_wait(*mutex);
      ++inside;
      max_inside = std::max(max_inside, inside);
      ++entries;
      co_await ctx.consume(microseconds(100));
      --inside;
      ctx.sem_signal(*mutex);
      co_await ctx.sleep_for(microseconds(50));
    }
  };
  auto a = kernel.create_task(aperiodic("a", 5), body);
  auto b = kernel.create_task(aperiodic("b", 5), body);
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(milliseconds(50));
  EXPECT_EQ(entries, 10);
  EXPECT_EQ(max_inside, 1);  // mutual exclusion held
  EXPECT_EQ(mutex->count(), 1);
}

}  // namespace
}  // namespace drt::rtos
