// A 1-node federation must be an invisible wrapper: the coordinator's
// placement policy, summary protocol and metrics isolation may not perturb
// the node's DRCR by one byte. The differential property test drives a bare
// DRCR stack and a Federation{nodes = 1} through identical randomized
// scripts — register (through global placement), unregister, enable/disable,
// system deploy/undeploy, resolve, time advances — and after every operation
// compares component states, rejection reasons, lifecycle event streams,
// kernel traces and rendered observability exports byte-for-byte.
//
// The second half pins the migration snapshot contract: migrating a
// component there-and-back is a descriptor fixpoint (the drt: XML written on
// the destination equals the source's, both ways) and every message queued
// in the instance's owned mailboxes is drained, replayed through the channel
// layer and delivered — nothing lost, nothing duplicated.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fed/coordinator.hpp"
#include "fed/federation.hpp"
#include "obs/export.hpp"
#include "test_helpers.hpp"
#include "testing/fuzzer.hpp"
#include "testing/scenario.hpp"

namespace drt::fed {
namespace {

using drcom::ComponentDescriptor;
using drcom::ComponentState;
using rtos::testing::quiet_config;

class IdleComponent : public drcom::RtComponent {
 public:
  rtos::TaskCoro run(drcom::JobContext& job) override {
    while (job.active()) co_await job.next_cycle();
  }
};

/// The fuzz bincode family, registered IDENTICALLY on both sides so factory
/// outcomes (ok / throw / null) can never be the source of a divergence.
void register_diff_factories(drcom::Drcr& drcr) {
  drcr.factories().register_factory(
      "fuzz.ok", [] { return std::make_unique<IdleComponent>(); });
  drcr.factories().register_factory(
      "fuzz.throw", []() -> std::unique_ptr<drcom::RtComponent> {
        throw std::runtime_error("diff: injected factory failure");
      });
  drcr.factories().register_factory(
      "fuzz.null",
      []() -> std::unique_ptr<drcom::RtComponent> { return nullptr; });
  drcr.factories().register_factory(
      "fuzz.init", [] { return std::make_unique<IdleComponent>(); });
}

/// The reference: the exact stack a component author runs without a
/// federation — same kernel config, same DRCR config as fed/federation.cpp's
/// drcr_config derives for a 1-node federation.
struct BareStack {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  drcom::Drcr drcr;

  explicit BareStack(std::size_t cpus)
      : engine(),
        framework(),
        kernel(engine, quiet_config(cpus)),
        drcr(framework, kernel,
             {.cpu_budget = 0.9,
              .auto_resolve = true,
              .register_service = true,
              .engine = rtos::EngineKind::kSequential,
              .engine_shards = 1}) {
    kernel.trace().enable();
    kernel.metrics().enable();
    register_diff_factories(drcr);
  }
};

FederationConfig single_node_config(std::size_t cpus) {
  FederationConfig config;
  config.nodes = 1;
  config.engine = rtos::EngineKind::kSequential;
  config.kernel = quiet_config(cpus);
  config.inbox_capacity = 0;  // no extra mailbox: byte-identical node
  return config;
}

std::string render_events(const drcom::Drcr& drcr) {
  std::ostringstream out;
  for (const drcom::DrcrEvent& event : drcr.recent_events()) {
    out << event.when << ' ' << static_cast<int>(event.type) << ' '
        << event.component << ' ' << static_cast<int>(event.code) << ' '
        << event.reason << '\n';
  }
  return out.str();
}

/// Byte-for-byte comparison of every observable surface the two stacks have.
void expect_identical(BareStack& bare, Federation& federation,
                      const std::vector<std::string>& names) {
  drcom::Drcr& fed_drcr = *federation.node(0).drcr;
  ASSERT_EQ(bare.engine.now(), federation.now());
  ASSERT_EQ(bare.drcr.component_names(), fed_drcr.component_names());
  ASSERT_EQ(bare.drcr.active_count(), fed_drcr.active_count());
  ASSERT_EQ(bare.drcr.deployed_systems(), fed_drcr.deployed_systems());
  for (const std::string& name : names) {
    SCOPED_TRACE("component " + name);
    ASSERT_EQ(bare.drcr.state_of(name), fed_drcr.state_of(name));
    const auto bare_health = bare.drcr.component_health(name);
    const auto fed_health = fed_drcr.component_health(name);
    ASSERT_EQ(bare_health.has_value(), fed_health.has_value());
    if (!bare_health.has_value()) continue;
    ASSERT_EQ(bare_health->reason, fed_health->reason);
    ASSERT_EQ(bare_health->last_error, fed_health->last_error);
  }
  // Lifecycle event stream, kernel trace, and rendered obs exports.
  ASSERT_EQ(render_events(bare.drcr), render_events(fed_drcr));
  ASSERT_EQ(drt::testing::render_trace(bare.kernel.trace()),
            drt::testing::render_trace(federation.node(0).kernel->trace()));
  const obs::PrometheusExporter prometheus;
  ASSERT_EQ(prometheus.render(bare.drcr.observe()),
            prometheus.render(fed_drcr.observe()));
}

TEST(FederationDiff, SingleNodeFederationIsByteIdenticalToBareDrcr) {
  constexpr std::size_t kCpus = 2;
  const std::vector<std::string> pool = {"da", "db", "dc", "dd",
                                         "de", "df", "dg", "dh"};
  const std::vector<std::string> systems = {"s0", "s1"};

  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    BareStack bare(kCpus);
    Federation federation(single_node_config(kCpus));
    FederationCoordinator coordinator(federation);
    federation.node(0).kernel->trace().enable();
    federation.node(0).kernel->metrics().enable();
    register_diff_factories(*federation.node(0).drcr);

    Rng rng(seed);
    for (int op = 0; op < 60; ++op) {
      SCOPED_TRACE("op " + std::to_string(op));
      const auto roll = rng.uniform(0, 99);
      if (roll < 35) {  // register through global placement
        const std::string& name =
            pool[static_cast<std::size_t>(rng.uniform(0, 7))];
        const ComponentDescriptor descriptor =
            drt::testing::random_descriptor(rng, name, kCpus);
        auto bare_result = bare.drcr.register_component(descriptor);
        auto fed_result = coordinator.place(descriptor);
        ASSERT_EQ(bare_result.ok(), fed_result.ok());
        if (!bare_result.ok()) {
          // place() forwards to the owning node, so even errors match.
          ASSERT_EQ(bare_result.error().code, fed_result.error().code);
          ASSERT_EQ(bare_result.error().message, fed_result.error().message);
        }
      } else if (roll < 50) {  // unregister (sometimes an unknown name)
        const std::string& name =
            pool[static_cast<std::size_t>(rng.uniform(0, 7))];
        ASSERT_EQ(bare.drcr.unregister_component(name).ok(),
                  coordinator.remove(name).ok());
      } else if (roll < 60) {  // enable
        const std::string& name =
            pool[static_cast<std::size_t>(rng.uniform(0, 7))];
        auto bare_result = bare.drcr.enable_component(name);
        auto fed_result = federation.node(0).drcr->enable_component(name);
        ASSERT_EQ(bare_result.ok(), fed_result.ok());
      } else if (roll < 70) {  // disable
        const std::string& name =
            pool[static_cast<std::size_t>(rng.uniform(0, 7))];
        auto bare_result = bare.drcr.disable_component(name);
        auto fed_result = federation.node(0).drcr->disable_component(name);
        ASSERT_EQ(bare_result.ok(), fed_result.ok());
      } else if (roll < 85) {  // advance virtual time
        const SimDuration step = rng.uniform(1, 10) * 1'000'000;
        bare.engine.run_until(bare.engine.now() + step);
        federation.advance(step);
      } else if (roll < 93) {  // explicit resolve
        bare.drcr.resolve();
        federation.node(0).drcr->resolve();
      } else {  // system deploy / undeploy
        const std::string& name =
            systems[static_cast<std::size_t>(rng.uniform(0, 1))];
        if (rng.chance(0.5)) {
          drcom::SystemDescriptor system;
          system.name = name;
          for (int m = 0; m < 2; ++m) {
            ComponentDescriptor member = drt::testing::random_descriptor(
                rng, name + "m" + std::to_string(m), kCpus);
            // Port-free members (plus the sporadic self-owned trigger):
            // system validation demands every internal wire be declared.
            member.ports.clear();
            if (member.type == rtos::TaskType::kSporadic) {
              drcom::PortSpec trigger;
              trigger.direction = drcom::PortDirection::kIn;
              trigger.name = member.name + "t";
              trigger.interface = drcom::PortInterface::kMailbox;
              trigger.data_type = rtos::DataType::kByte;
              trigger.size = 8;
              member.ports.push_back(trigger);
            }
            system.components.push_back(std::move(member));
          }
          ASSERT_EQ(bare.drcr.deploy_system(system).ok(),
                    coordinator.place_system(system).ok());
        } else {
          ASSERT_EQ(bare.drcr.undeploy_system(name).ok(),
                    coordinator.undeploy(name).ok());
        }
      }
      coordinator.publish_all();
      expect_identical(bare, federation, pool);
    }
  }
}

// ------------------------------------------- migration round-trip fixpoint

ComponentDescriptor sporadic_with_trigger(const std::string& name) {
  ComponentDescriptor d;
  d.name = name;
  d.bincode = "fuzz.ok";
  d.type = rtos::TaskType::kSporadic;
  d.cpu_usage = 0.2;
  drcom::PortSpec trigger;
  trigger.direction = drcom::PortDirection::kIn;
  trigger.name = name + "t";
  trigger.interface = drcom::PortInterface::kMailbox;
  trigger.data_type = rtos::DataType::kByte;
  trigger.size = 8;
  drcom::SporadicSpec spec;
  spec.min_interarrival = 2'000'000;
  spec.run_on_cpu = 0;
  spec.priority = 5;
  spec.trigger_port = trigger.name;
  d.sporadic = spec;
  d.ports.push_back(trigger);
  return d;
}

TEST(FederationDiff, MigrationRoundTripIsDescriptorFixpointAndReplaysQueue) {
  FederationConfig config;
  config.nodes = 2;
  config.engine = rtos::EngineKind::kSequential;
  config.kernel = quiet_config(2);
  Federation federation(config);
  for (NodeIndex i = 0; i < federation.size(); ++i) {
    register_diff_factories(*federation.node(i).drcr);
  }
  FederationCoordinator coordinator(federation);

  const ComponentDescriptor original = sporadic_with_trigger("rt");
  const std::string original_xml = drcom::write_descriptor(original);
  auto placed = coordinator.place(original);
  ASSERT_TRUE(placed.ok());
  const NodeIndex src = placed.value();
  const NodeIndex dst = 1 - src;

  // Queue messages in the self-owned trigger mailbox; they must survive the
  // drain -> re-admit -> replay cycle.
  rtos::RtKernel& src_kernel = *federation.node(src).kernel;
  rtos::Mailbox* trigger = src_kernel.mailbox_find("rtt");
  ASSERT_NE(trigger, nullptr);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(src_kernel.mailbox_send(
        *trigger, rtos::message_from_string("q" + std::to_string(i))));
  }

  // There: snapshot -> re-admit must reproduce the descriptor exactly.
  ASSERT_TRUE(coordinator.migrate("rt", dst).ok());
  const ComponentDescriptor* moved = federation.node(dst).drcr->descriptor_of("rt");
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(drcom::write_descriptor(*moved), original_xml);
  EXPECT_EQ(federation.node(dst).drcr->state_of("rt"),
            ComponentState::kActive);
  rtos::NodeChannel* forward = federation.find_channel(src, dst, "rtt");
  ASSERT_NE(forward, nullptr);
  EXPECT_EQ(forward->stats().sent, 3u);

  // Let the replay traffic land before moving again (channels must drain
  // fully — nothing lost, nothing duplicated).
  federation.advance(50'000'000);
  EXPECT_EQ(forward->stats().arrived, 3u);
  EXPECT_EQ(forward->stats().accepted + forward->stats().dropped(), 3u);
  EXPECT_EQ(federation.in_flight_total(), 0u);

  // And back: the fixpoint holds in the other direction too.
  ASSERT_TRUE(coordinator.migrate("rt", src).ok());
  const ComponentDescriptor* returned =
      federation.node(src).drcr->descriptor_of("rt");
  ASSERT_NE(returned, nullptr);
  EXPECT_EQ(drcom::write_descriptor(*returned), original_xml);
  EXPECT_EQ(federation.node(dst).drcr->descriptor_of("rt"), nullptr);
  EXPECT_EQ(coordinator.stats().migrations, 2u);

  federation.advance(50'000'000);
  const rtos::ChannelStats totals = federation.channel_totals();
  EXPECT_EQ(totals.sent, totals.arrived);
  EXPECT_EQ(totals.arrived, totals.accepted + totals.dropped());
  EXPECT_EQ(federation.in_flight_total(), 0u);
}

}  // namespace
}  // namespace drt::fed
