// Logging sink/levels and kernel execution-trace behaviour.
#include <gtest/gtest.h>

#include <set>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"
#include "util/logging.hpp"

namespace drt {
namespace {

using rtos::testing::quiet_config;

struct LogCapture {
  LogCapture() {
    log::set_level(log::Level::kTrace);
    log::set_sink([this](log::Level level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
  ~LogCapture() {
    log::set_sink(nullptr);
    log::set_level(log::Level::kWarn);
  }
  std::vector<log::Level> levels;
  std::vector<std::string> lines;
};

TEST(Logging, SinkReceivesFormattedLines) {
  LogCapture capture;
  log::write(log::Level::kInfo, "testmod", 1'234, "hello world");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("[INFO]"), std::string::npos);
  EXPECT_NE(capture.lines[0].find("t=1234ns"), std::string::npos);
  EXPECT_NE(capture.lines[0].find("[testmod]"), std::string::npos);
  EXPECT_NE(capture.lines[0].find("hello world"), std::string::npos);
}

TEST(Logging, NegativeTimeOmitsStamp) {
  LogCapture capture;
  log::write(log::Level::kInfo, "m", -1, "no clock yet");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0].find("t="), std::string::npos);
}

TEST(Logging, LevelFiltersOutput) {
  LogCapture capture;
  log::set_level(log::Level::kError);
  log::write(log::Level::kWarn, "m", 0, "dropped");
  log::write(log::Level::kError, "m", 0, "kept");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("kept"), std::string::npos);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_TRUE(log::enabled(log::Level::kError));
}

TEST(Logging, OffSilencesEverything) {
  LogCapture capture;
  log::set_level(log::Level::kOff);
  log::write(log::Level::kError, "m", 0, "nope");
  EXPECT_TRUE(capture.lines.empty());
}

TEST(Logging, StreamStyleLine) {
  LogCapture capture;
  { log::Line(log::Level::kInfo, "mod", 42) << "x=" << 7 << " y=" << 2.5; }
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("x=7 y=2.5"), std::string::npos);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log::to_string(log::Level::kTrace), "TRACE");
  EXPECT_EQ(log::to_string(log::Level::kError), "ERROR");
  EXPECT_EQ(log::to_string(log::Level::kOff), "OFF");
}

// -------------------------------------------------------------------- trace

TEST(KernelTrace, PeriodicTaskLeavesFullLifecycleTrail) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.trace().enable();
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "tick",
                       .type = rtos::TaskType::kPeriodic,
                       .period = milliseconds(1)},
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(microseconds(100));
          co_await ctx.wait_next_period();
        }
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(10));
  const auto releases = kernel.trace().filter(rtos::TraceKind::kReleased);
  const auto dispatches = kernel.trace().filter(rtos::TraceKind::kDispatched);
  const auto completions = kernel.trace().filter(rtos::TraceKind::kCompleted);
  EXPECT_GE(releases.size(), 9u);
  EXPECT_GE(dispatches.size(), releases.size());
  EXPECT_GE(completions.size(), releases.size() - 1);
  // Trace events are time-ordered.
  SimTime previous = 0;
  for (const auto& event : kernel.trace().events()) {
    EXPECT_GE(event.when, previous);
    previous = event.when;
  }
  // Releases and completions alternate per job for this simple task.
  for (std::size_t i = 0; i + 1 < completions.size(); ++i) {
    EXPECT_EQ(completions[i].task, id.value());
  }
  kernel.trace().clear();
  EXPECT_TRUE(kernel.trace().events().empty());
}

TEST(KernelTrace, PreemptionEventsCarryTaskIds) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.trace().enable();
  auto low = kernel.create_task(
      rtos::TaskParams{.name = "low", .type = rtos::TaskType::kAperiodic,
                       .priority = 5},
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.consume(milliseconds(5));
      });
  auto high = kernel.create_task(
      rtos::TaskParams{.name = "high", .type = rtos::TaskType::kAperiodic,
                       .priority = 1},
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.consume(milliseconds(1));
      });
  ASSERT_TRUE(kernel.start_task(low.value()).ok());
  ASSERT_TRUE(kernel.start_task(high.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(10));
  const auto preemptions = kernel.trace().filter(rtos::TraceKind::kPreempted);
  ASSERT_EQ(preemptions.size(), 1u);
  EXPECT_EQ(preemptions[0].task, low.value());
  EXPECT_EQ(preemptions[0].when, milliseconds(1));
}

TEST(KernelTrace, MailboxTrafficTraced) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.trace().enable();
  auto* mailbox = kernel.mailbox_create("mbx", 4).value();
  kernel.mailbox_send(*mailbox, rtos::message_from_string("x"));
  (void)kernel.mailbox_try_receive(*mailbox);
  EXPECT_EQ(kernel.trace().filter(rtos::TraceKind::kMailboxSend).size(), 1u);
  EXPECT_EQ(kernel.trace().filter(rtos::TraceKind::kMailboxRecv).size(), 1u);
  EXPECT_EQ(kernel.trace().filter(rtos::TraceKind::kMailboxSend)[0].detail,
            "mbx");
}

TEST(TraceKindNames, AllDistinct) {
  // to_string must be injective enough for log analysis.
  const rtos::TraceKind kinds[] = {
      rtos::TraceKind::kTaskCreated, rtos::TraceKind::kTaskStarted,
      rtos::TraceKind::kReleased,    rtos::TraceKind::kDispatched,
      rtos::TraceKind::kPreempted,   rtos::TraceKind::kSliceRotated,
      rtos::TraceKind::kBlocked,     rtos::TraceKind::kCompleted,
      rtos::TraceKind::kSuspendedK,  rtos::TraceKind::kResumed,
      rtos::TraceKind::kDeleted,     rtos::TraceKind::kFinished,
      rtos::TraceKind::kDeadlineMiss, rtos::TraceKind::kMailboxSend,
      rtos::TraceKind::kMailboxRecv};
  std::set<std::string> names;
  for (const auto kind : kinds) names.insert(rtos::to_string(kind));
  EXPECT_EQ(names.size(), std::size(kinds));
}

}  // namespace
}  // namespace drt
