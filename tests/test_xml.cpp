// XML parser/DOM/writer tests, including the exact descriptor dialect of the
// paper's Figure 2.
#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace drt::xml {
namespace {

TEST(XmlParser, MinimalElement) {
  auto doc = parse("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->name, "root");
  EXPECT_TRUE(doc.value().root->children.empty());
}

TEST(XmlParser, DeclarationAndAttributes) {
  auto doc = parse(R"(<?xml version="1.0" encoding="UTF-8"?>
    <task name="camera" priority='2'/>)");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc.value().root;
  EXPECT_EQ(root.attribute("name").value(), "camera");
  EXPECT_EQ(root.attribute("priority").value(), "2");
  EXPECT_FALSE(root.attribute("missing").has_value());
  EXPECT_EQ(root.attribute_or("missing", "dflt"), "dflt");
}

TEST(XmlParser, NestedElementsInDocumentOrder) {
  auto doc = parse("<a><b/><c><d/></c><b/></a>");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc.value().root;
  const auto children = root.child_elements();
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0]->name, "b");
  EXPECT_EQ(children[1]->name, "c");
  EXPECT_EQ(children[2]->name, "b");
  EXPECT_EQ(root.children_named("b").size(), 2u);
  ASSERT_NE(root.first_child("c"), nullptr);
  EXPECT_EQ(root.first_child("c")->child_elements().size(), 1u);
}

TEST(XmlParser, TextContentAndEntities) {
  auto doc = parse("<m>a &lt;b&gt; &amp; &quot;c&quot; &apos;d&apos;</m>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->text(), "a <b> & \"c\" 'd'");
}

TEST(XmlParser, NumericCharacterReferences) {
  auto doc = parse("<m>&#65;&#x42;&#xe9;</m>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->text(), "AB\xC3\xA9");  // A, B, e-acute (UTF-8)
}

TEST(XmlParser, CDataIsLiteralText) {
  auto doc = parse("<m><![CDATA[<not & parsed>]]></m>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->text(), "<not & parsed>");
}

TEST(XmlParser, CommentsPreserved) {
  auto doc = parse("<a><!-- hello --><b/></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().root->children.size(), 2u);
  const auto* comment = std::get_if<Comment>(&doc.value().root->children[0]);
  ASSERT_NE(comment, nullptr);
  EXPECT_EQ(comment->value, " hello ");
}

TEST(XmlParser, ProcessingInstruction) {
  auto doc = parse("<?xml version=\"1.0\"?><?style url?><a/>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().prolog.size(), 1u);
  const auto* pi =
      std::get_if<ProcessingInstruction>(&doc.value().prolog[0]);
  ASSERT_NE(pi, nullptr);
  EXPECT_EQ(pi->target, "style");
}

TEST(XmlParser, QualifiedNames) {
  auto doc = parse("<drt:component xmlns:drt=\"urn:drt\"/>");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc.value().root;
  EXPECT_EQ(root.name, "drt:component");
  EXPECT_EQ(root.local_name(), "component");
  EXPECT_EQ(root.prefix(), "drt");
}

TEST(XmlParser, AttributeEntityDecoding) {
  auto doc = parse("<a v=\"x&amp;y &#61; z\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root->attribute("v").value(), "x&y = z");
}

// ---------------------------------------------------------------- errors --

struct BadInput {
  const char* name;
  const char* text;
};

class XmlParserErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserErrors, Rejected) {
  auto doc = parse(GetParam().text);
  ASSERT_FALSE(doc.ok()) << GetParam().name;
  EXPECT_EQ(doc.error().code, "xml.parse_error");
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XmlParserErrors,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"unclosed", "<a>"},
        BadInput{"mismatched", "<a></b>"},
        BadInput{"double_root_content", "<a/>junk"},
        BadInput{"bad_entity", "<a>&nosuch;</a>"},
        BadInput{"unquoted_attr", "<a v=1/>"},
        BadInput{"duplicate_attr", "<a v=\"1\" v=\"2\"/>"},
        BadInput{"lt_in_attr", "<a v=\"<\"/>"},
        BadInput{"doctype", "<!DOCTYPE a><a/>"},
        BadInput{"double_dash_comment", "<a><!-- x -- y --></a>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"missing_attr_ws", "<a v=\"1\"w=\"2\"/>"}),
    [](const auto& info) { return info.param.name; });

TEST(XmlParser, ErrorsCarryLineAndColumn) {
  auto doc = parse("<a>\n  <b>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("line"), std::string::npos);
}

// Truncation property: cutting a well-formed document at ANY byte must
// produce a structured parse error (never a crash, never silent acceptance),
// and the error must carry a position.
TEST(XmlParser, EveryTruncationIsAStructuredError) {
  const std::string source =
      "<?xml version=\"1.0\"?>\n"
      "<drt:component name=\"cam\" type=\"periodic\">\n"
      "  <implementation bincode=\"ua.pats.RTComponent\"/>\n"
      "  <!-- note --><outport name=\"img\" interface=\"RTAI.SHM\""
      " type=\"Byte\" size=\"4\"/>\n"
      "  <m>a &lt;b&gt; <![CDATA[raw]]></m>\n"
      "</drt:component>\n";
  ASSERT_TRUE(parse(source).ok());
  for (std::size_t cut = 0; cut + 1 < source.size(); ++cut) {
    auto doc = parse(source.substr(0, cut));
    ASSERT_FALSE(doc.ok()) << "prefix of length " << cut << " parsed";
    EXPECT_EQ(doc.error().code, "xml.parse_error") << "cut=" << cut;
    EXPECT_NE(doc.error().message.find("line"), std::string::npos)
        << "cut=" << cut << ": no position in '" << doc.error().message
        << "'";
  }
}

// Recursive descent has a hard nesting ceiling so adversarial input cannot
// overflow the native stack.
TEST(XmlParser, NestingDepthIsBounded) {
  auto nested = [](int depth) {
    std::string text;
    for (int i = 0; i < depth; ++i) text += "<a>";
    text += "<leaf/>";
    for (int i = 0; i < depth; ++i) text += "</a>";
    return text;
  };
  EXPECT_TRUE(parse(nested(150)).ok());
  auto too_deep = parse(nested(5'000));
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.error().code, "xml.parse_error");
  EXPECT_NE(too_deep.error().message.find("depth"), std::string::npos);
}

TEST(XmlParser, ExpectedRootHelper) {
  EXPECT_TRUE(parse_expecting_root("<drt:component/>", "component").ok());
  EXPECT_TRUE(parse_expecting_root("<component/>", "component").ok());
  auto wrong = parse_expecting_root("<other/>", "component");
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.error().code, "xml.unexpected_root");
}

// ---------------------------------------------------------------- writer --

TEST(XmlWriter, EscapesSpecials) {
  EXPECT_EQ(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(escape_attribute("\"'<>&"), "&quot;&apos;&lt;&gt;&amp;");
}

TEST(XmlWriter, RoundTripsStructure) {
  const char* source = R"(<drt:component name="camera" type="periodic">
    <implementation bincode="ua.pats.RTComponent"/>
    <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  </drt:component>)";
  auto doc = parse(source);
  ASSERT_TRUE(doc.ok());
  const std::string serialized = write(doc.value());
  auto reparsed = parse(serialized);
  ASSERT_TRUE(reparsed.ok());
  const Element& a = *doc.value().root;
  const Element& b = *reparsed.value().root;
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.attributes.size(), b.attributes.size());
  EXPECT_EQ(a.child_elements().size(), b.child_elements().size());
  EXPECT_EQ(b.first_child("outport")->attribute("size").value(), "400");
}

TEST(XmlWriter, RoundTripsSpecialCharacters) {
  Element root;
  root.name = "m";
  root.set_attribute("v", "a<b>&\"c\"");
  root.append_text("x & y < z");
  auto reparsed = parse(write(root));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().root->attribute("v").value(), "a<b>&\"c\"");
  // Pretty printer pads with whitespace; compare trimmed content.
  const std::string text = reparsed.value().root->text();
  EXPECT_NE(text.find("x & y < z"), std::string::npos);
}

TEST(XmlWriter, CompactModeHasNoNewlines) {
  Element root;
  root.name = "a";
  root.append_child("b");
  WriteOptions options;
  options.pretty = false;
  options.include_declaration = false;
  EXPECT_EQ(write(root, options), "<a><b/></a>");
}

TEST(XmlDom, BuilderApi) {
  Element root;
  root.name = "component";
  auto& port = root.append_child("outport");
  port.set_attribute("name", "images");
  port.set_attribute("name", "frames");  // overwrite, not duplicate
  ASSERT_EQ(port.attributes.size(), 1u);
  EXPECT_EQ(port.attribute("name").value(), "frames");
  EXPECT_TRUE(root.has_attribute("name") == false);
}

}  // namespace
}  // namespace drt::xml
