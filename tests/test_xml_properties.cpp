// Property tests for the XML layer: randomized documents survive a
// write→parse round trip structurally intact; escaping is total.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace drt::xml {
namespace {

std::string random_name(Rng& rng) {
  static const char* names[] = {"component", "port",  "task", "prop",
                                "drt:item",  "a",     "b2",   "x-y",
                                "ns:deep",   "under_score"};
  return names[rng.uniform(0, 9)];
}

std::string random_text(Rng& rng) {
  std::string out;
  const auto length = rng.uniform(0, 24);
  for (std::int64_t i = 0; i < length; ++i) {
    // Bias towards the characters that must be escaped.
    static const char alphabet[] = "abc <>&\"' xyz=.;/\\!?";
    out += alphabet[rng.uniform(0, sizeof(alphabet) - 2)];
  }
  return out;
}

void build_random_tree(Rng& rng, Element& element, int depth) {
  const auto attribute_count = rng.uniform(0, 3);
  for (std::int64_t i = 0; i < attribute_count; ++i) {
    element.set_attribute("a" + std::to_string(i), random_text(rng));
  }
  if (depth <= 0) return;
  const auto child_count = rng.uniform(0, 3);
  for (std::int64_t i = 0; i < child_count; ++i) {
    if (rng.chance(0.3)) {
      element.append_text(random_text(rng));
    } else {
      auto& child = element.append_child(random_name(rng));
      build_random_tree(rng, child, depth - 1);
    }
  }
}

/// Structural equality modulo whitespace-only text nodes (the pretty
/// printer adds indentation).
void expect_equivalent(const Element& a, const Element& b) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  for (const auto& attr : a.attributes) {
    ASSERT_TRUE(b.attribute(attr.name).has_value()) << attr.name;
    EXPECT_EQ(b.attribute(attr.name).value(), attr.value);
  }
  const auto a_children = a.child_elements();
  const auto b_children = b.child_elements();
  ASSERT_EQ(a_children.size(), b_children.size());
  for (std::size_t i = 0; i < a_children.size(); ++i) {
    expect_equivalent(*a_children[i], *b_children[i]);
  }
  // Text content survives modulo surrounding whitespace per node.
  auto normalize = [](std::string text) {
    std::string out;
    for (char c : text) {
      if (c != '\n') out += c;
    }
    while (!out.empty() && out.front() == ' ') out.erase(out.begin());
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out;
  };
  EXPECT_EQ(normalize(a.text()), normalize(b.text()));
}

class XmlRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlRoundTrip, RandomTreeSurvivesWriteParse) {
  Rng rng(GetParam());
  Element root;
  root.name = "root";
  build_random_tree(rng, root, 4);
  WriteOptions options;
  options.pretty = false;  // exact text preservation
  options.include_declaration = false;
  const std::string serialized = write(root, options);
  auto reparsed = parse(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n"
                             << serialized;
  expect_equivalent(root, *reparsed.value().root);
}

TEST_P(XmlRoundTrip, DoubleRoundTripIsIdempotent) {
  Rng rng(GetParam() ^ 0xD00D);
  Element root;
  root.name = "root";
  build_random_tree(rng, root, 3);
  WriteOptions options;
  options.pretty = false;
  options.include_declaration = false;
  const std::string once = write(root, options);
  auto reparsed = parse(once);
  ASSERT_TRUE(reparsed.ok());
  const std::string twice = write(*reparsed.value().root, options);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u));

TEST(XmlEscaping, EveryAsciiByteRoundTripsInAttribute) {
  Element root;
  root.name = "r";
  std::string hostile;
  for (int c = 0x20; c < 0x7F; ++c) hostile += static_cast<char>(c);
  root.set_attribute("v", hostile);
  WriteOptions options;
  options.pretty = false;
  options.include_declaration = false;
  auto reparsed = parse(write(root, options));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().root->attribute("v").value(), hostile);
}

TEST(XmlEscaping, EveryAsciiByteRoundTripsInText) {
  Element root;
  root.name = "r";
  std::string hostile;
  for (int c = 0x20; c < 0x7F; ++c) hostile += static_cast<char>(c);
  root.append_text(hostile);
  WriteOptions options;
  options.pretty = false;
  options.include_declaration = false;
  auto reparsed = parse(write(root, options));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().root->text(), hostile);
}

}  // namespace
}  // namespace drt::xml
