// AdaptationManager: registry-driven QoS monitoring and reactions (§2.4's
// "adaptation managers ... monitor the tasks status and adjust the parameter
// or even change the application structure").
#include <gtest/gtest.h>

#include "drcom/adaptation.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// One-step QoS ladder: the old single-action config, spelled as policies.
AdaptationConfig one_step(SimDuration poll, QosActionKind action) {
  AdaptationConfig config;
  config.poll_period = poll;
  config.policies = {{AdaptationTrigger::kQosRule, action, 1}};
  return config;
}

/// Periodic worker whose job cost is externally adjustable (fault injection).
class Variable : public RtComponent {
 public:
  explicit Variable(SimDuration* cost) : cost_(cost) {}
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(*cost_);
      co_await job.next_cycle();
    }
  }

 private:
  SimDuration* cost_;
};

struct AdaptationFixture : public ::testing::Test {
  AdaptationFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory("var.Impl", [this] {
      return std::make_unique<Variable>(&job_cost);
    });
  }

  ComponentDescriptor worker(const std::string& name, double hz = 1000.0) {
    ComponentDescriptor d;
    d.name = name;
    d.bincode = "var.Impl";
    d.type = rtos::TaskType::kPeriodic;
    d.cpu_usage = 0.3;
    d.periodic = PeriodicSpec{hz, 0, 3};
    return d;
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  SimDuration job_cost = microseconds(100);
};

TEST_F(AdaptationFixture, NoViolationsWhileHealthy) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.max_new_misses = 0;
  manager.add_rule(rule);
  manager.start();
  engine.run_until(seconds(1));
  EXPECT_TRUE(manager.violations().empty());
  manager.stop();
}

TEST_F(AdaptationFixture, DetectsDeadlineMisses) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.max_new_misses = 0;
  manager.add_rule(rule);
  manager.start();
  engine.run_until(milliseconds(500));
  ASSERT_TRUE(manager.violations().empty());
  job_cost = microseconds(1'500);  // overruns the 1 kHz period
  engine.run_until(seconds(1));
  ASSERT_FALSE(manager.violations().empty());
  EXPECT_EQ(manager.violations().front().component, "w");
  EXPECT_NE(manager.violations().front().rule_description.find("misses"),
            std::string::npos);
}

TEST_F(AdaptationFixture, RuleScopedToComponent) {
  ASSERT_TRUE(drcr.register_component(worker("good")).ok());
  ASSERT_TRUE(drcr.register_component(worker("bad")).ok());
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.component = "good";  // only watch "good"
  rule.max_new_misses = 0;
  manager.add_rule(rule);
  manager.start();
  job_cost = microseconds(1'500);  // both miss, only "good" is watched
  engine.run_until(seconds(1));
  for (const auto& violation : manager.violations()) {
    EXPECT_EQ(violation.component, "good");
  }
  EXPECT_FALSE(manager.violations().empty());
}

TEST_F(AdaptationFixture, LatencyBoundRule) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.max_latency_ns = 0.5;  // quiet config latencies are exactly 0
  manager.add_rule(rule);
  manager.start();
  engine.run_until(milliseconds(300));
  EXPECT_TRUE(manager.violations().empty());
  QosRule strict;
  strict.max_latency_ns = -1.0;  // any sample violates
  manager.add_rule(strict);
  engine.run_until(milliseconds(600));
  EXPECT_FALSE(manager.violations().empty());
}

TEST_F(AdaptationFixture, LivenessFloorDetectsStalledComponent) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(drcr,
                            one_step(milliseconds(100), QosActionKind::kNotify));
  QosRule rule;
  rule.min_new_activations = 50;  // expect ~100 per 100ms poll at 1 kHz
  manager.add_rule(rule);
  manager.start();
  engine.run_until(milliseconds(400));
  EXPECT_TRUE(manager.violations().empty());
  // Kernel-level suspension stalls activations without soft-suspension.
  ASSERT_TRUE(kernel.suspend_task(drcr.instance_of("w")->task_id()).ok());
  engine.run_until(milliseconds(800));
  EXPECT_FALSE(manager.violations().empty());
}

TEST_F(AdaptationFixture, SuspendActionParksTheOffender) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(
      drcr, one_step(milliseconds(100), QosActionKind::kSuspend));
  QosRule rule;
  rule.max_new_misses = 5;
  manager.add_rule(rule);
  manager.start();
  job_cost = microseconds(1'500);
  engine.run_until(seconds(1));
  EXPECT_TRUE(drcr.instance_of("w")->soft_suspended());
}

TEST_F(AdaptationFixture, DisableActionChangesApplicationStructure) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(
      drcr, one_step(milliseconds(100), QosActionKind::kDisable));
  QosRule rule;
  rule.max_new_misses = 5;
  manager.add_rule(rule);
  manager.start();
  job_cost = microseconds(1'500);
  engine.run_until(seconds(1));
  EXPECT_EQ(drcr.state_of("w").value(), ComponentState::kDisabled);
}

TEST_F(AdaptationFixture, HandlerReceivesViolations) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.max_new_misses = 0;
  manager.add_rule(rule);
  int handled = 0;
  manager.set_violation_handler([&](const QosViolation& violation) {
    ++handled;
    EXPECT_EQ(violation.component, "w");
    EXPECT_GT(violation.when, 0);
  });
  manager.start();
  job_cost = microseconds(1'500);
  engine.run_until(seconds(1));
  EXPECT_GT(handled, 0);
}

TEST_F(AdaptationFixture, StopHaltsPolling) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.max_new_misses = 0;
  manager.add_rule(rule);
  manager.start();
  manager.stop();
  job_cost = microseconds(1'500);
  engine.run_until(seconds(1));
  EXPECT_TRUE(manager.violations().empty());
}

TEST_F(AdaptationFixture, TracksComponentsArrivingLater) {
  AdaptationManager manager(drcr);
  QosRule rule;
  rule.max_new_misses = 0;
  manager.add_rule(rule);
  manager.start();
  engine.run_until(milliseconds(200));
  ASSERT_TRUE(drcr.register_component(worker("late")).ok());
  job_cost = microseconds(1'500);
  engine.run_until(seconds(1));
  EXPECT_FALSE(manager.violations().empty());
  EXPECT_EQ(manager.violations().front().component, "late");
}

}  // namespace
}  // namespace drt::drcom
