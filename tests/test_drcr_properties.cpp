// DRCR resolution as a property: for random dependency graphs deployed in
// random order with random churn, the runtime must always converge to the
// correct fixpoint — a component is ACTIVE iff every mandatory in-port has
// an ACTIVE provider (admission disabled so functional logic is isolated).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

class Echo : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(1'000);
      co_await job.next_cycle();
    }
  }
};

struct GraphNode {
  std::string name;
  std::vector<std::string> outs;  // port names
  std::vector<std::string> ins;   // port names (provided by other nodes)
};

/// Generates a random directed graph: `count` nodes, each with one out-port;
/// edges (in-port references) chosen randomly — cycles included on purpose.
std::vector<GraphNode> random_graph(Rng& rng, std::size_t count,
                                    double edge_probability) {
  std::vector<GraphNode> nodes(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].name = "n" + std::to_string(i);
    nodes[i].outs.push_back("p" + std::to_string(i));
  }
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      if (i == j) continue;
      if (rng.next_double() < edge_probability) {
        nodes[i].ins.push_back("p" + std::to_string(j));
      }
    }
  }
  return nodes;
}

ComponentDescriptor node_descriptor(const GraphNode& node) {
  ComponentDescriptor d;
  d.name = node.name;
  d.bincode = "prop.Echo";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = 0.0;  // admission neutral
  d.periodic = PeriodicSpec{100.0, 0, 5};
  for (const auto& out : node.outs) {
    d.ports.push_back({PortDirection::kOut, out, PortInterface::kShm,
                       rtos::DataType::kInteger, 1});
  }
  for (const auto& in : node.ins) {
    d.ports.push_back({PortDirection::kIn, in, PortInterface::kShm,
                       rtos::DataType::kInteger, 1});
  }
  return d;
}

/// Ground truth: the greatest set S of registered nodes such that every
/// member's in-ports are provided by members of S (computed independently of
/// the DRCR by fixpoint deletion).
std::set<std::string> expected_active(
    const std::map<std::string, GraphNode>& registered) {
  std::set<std::string> active;
  for (const auto& [name, _] : registered) active.insert(name);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, node] : registered) {
      if (!active.contains(name)) continue;
      for (const auto& in : node.ins) {
        bool provided = false;
        for (const auto& [other_name, other] : registered) {
          if (other_name == name || !active.contains(other_name)) continue;
          for (const auto& out : other.outs) {
            if (out == in) {
              provided = true;
              break;
            }
          }
          if (provided) break;
        }
        if (!provided) {
          active.erase(name);
          changed = true;
          break;
        }
      }
    }
  }
  return active;
}

class DrcrFixpoint : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DrcrFixpoint, RandomGraphWithChurnMatchesGroundTruth) {
  Rng rng(GetParam());
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel(engine, quiet_config());
  DrcrConfig config;
  config.cpu_budget = 1.0;  // admission neutral for usage 0 components
  Drcr drcr(framework, kernel, config);
  drcr.factories().register_factory(
      "prop.Echo", [] { return std::make_unique<Echo>(); });

  const auto graph = random_graph(rng, 8, 0.18);
  std::map<std::string, GraphNode> registered;

  // Churn: 40 random register/unregister operations.
  for (int step = 0; step < 40; ++step) {
    const auto& node = graph[static_cast<std::size_t>(rng.uniform(0, 7))];
    if (registered.contains(node.name)) {
      ASSERT_TRUE(drcr.unregister_component(node.name).ok());
      registered.erase(node.name);
    } else {
      ASSERT_TRUE(drcr.register_component(node_descriptor(node)).ok());
      registered.emplace(node.name, node);
    }
    engine.run_until(engine.now() + milliseconds(1));

    // Invariant: DRCR state == independent fixpoint, at every step.
    const auto truth = expected_active(registered);
    for (const auto& [name, _] : registered) {
      const auto state = drcr.state_of(name);
      ASSERT_TRUE(state.has_value()) << name;
      if (truth.contains(name)) {
        EXPECT_EQ(*state, ComponentState::kActive)
            << name << " at step " << step << " seed " << GetParam();
      } else {
        EXPECT_EQ(*state, ComponentState::kUnsatisfied)
            << name << " at step " << step << " seed " << GetParam();
      }
    }
    // Kernel-side consistency: exactly one live task per active component.
    std::size_t live_tasks = 0;
    for (const auto* task : kernel.tasks()) {
      if (task->state != rtos::TaskState::kFinished) ++live_tasks;
    }
    EXPECT_EQ(live_tasks, truth.size()) << "at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrcrFixpoint,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

}  // namespace
}  // namespace drt::drcom
