// System-composition descriptor (ADL extension): parsing, architectural
// validation, atomic deployment through the DRCR.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "drcom/system_descriptor.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

constexpr const char* kVisionSystem = R"(<?xml version="1.0"?>
<drt:system name="vision" desc="inspection pipeline">
  <drt:component name="camera" type="periodic" cpuusage="0.1">
    <implementation bincode="sys.Cam"/>
    <periodictask frequence="100" runoncpu="0" priority="2"/>
    <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  </drt:component>
  <drt:component name="roi" type="periodic" cpuusage="0.2">
    <implementation bincode="sys.Roi"/>
    <periodictask frequence="100" runoncpu="0" priority="3"/>
    <inport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
    <outport name="coords" interface="RTAI.SHM" type="Integer" size="4"/>
  </drt:component>
  <connection from="camera.images" to="roi.images"/>
  <cpubudget cpu="0" limit="0.8"/>
</drt:system>)";

TEST(SystemDescriptor, ParsesCompleteSystem) {
  auto parsed = parse_system_descriptor(kVisionSystem);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const SystemDescriptor& system = parsed.value();
  EXPECT_EQ(system.name, "vision");
  EXPECT_EQ(system.description, "inspection pipeline");
  ASSERT_EQ(system.components.size(), 2u);
  EXPECT_NE(system.find_component("camera"), nullptr);
  EXPECT_NE(system.find_component("roi"), nullptr);
  EXPECT_EQ(system.find_component("nope"), nullptr);
  ASSERT_EQ(system.connections.size(), 1u);
  EXPECT_EQ(system.connections[0].from_component, "camera");
  EXPECT_EQ(system.connections[0].to_port, "images");
  ASSERT_EQ(system.budgets.size(), 1u);
  EXPECT_DOUBLE_EQ(system.budgets[0].limit, 0.8);
}

TEST(SystemDescriptor, RoundTripsThroughWriter) {
  auto parsed = parse_system_descriptor(kVisionSystem);
  ASSERT_TRUE(parsed.ok());
  const std::string serialized = write_system_descriptor(parsed.value());
  auto reparsed = parse_system_descriptor(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n"
                             << serialized;
  EXPECT_EQ(reparsed.value().components.size(), 2u);
  EXPECT_EQ(reparsed.value().connections.size(), 1u);
  EXPECT_EQ(reparsed.value().budgets.size(), 1u);
}

struct BadSystem {
  const char* name;
  const char* xml;
};

class SystemDescriptorErrors : public ::testing::TestWithParam<BadSystem> {};

TEST_P(SystemDescriptorErrors, Rejected) {
  auto parsed = parse_system_descriptor(GetParam().xml);
  ASSERT_FALSE(parsed.ok()) << GetParam().name;
  EXPECT_EQ(parsed.error().code, "drcom.bad_system") << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SystemDescriptorErrors,
    ::testing::Values(
        BadSystem{"no_name", R"(<drt:system>
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/></drt:component>
          </drt:system>)"},
        BadSystem{"duplicate_member", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/></drt:component>
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/></drt:component>
          </drt:system>)"},
        BadSystem{"unknown_element", R"(<drt:system name="s">
          <wires/></drt:system>)"},
        BadSystem{"bad_endpoint", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <connection from="a" to="a.p"/></drt:system>)"},
        BadSystem{"unknown_component_in_connection", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <connection from="a.p" to="ghost.p"/></drt:system>)"},
        BadSystem{"wrong_direction", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <drt:component name="b" type="aperiodic">
            <implementation bincode="x"/>
            <inport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <connection from="b.p" to="a.p"/></drt:system>)"},
        BadSystem{"cross_name_connection", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <drt:component name="b" type="aperiodic">
            <implementation bincode="x"/>
            <inport name="q" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <connection from="a.p" to="b.q"/></drt:system>)"},
        BadSystem{"duplicate_provider", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <drt:component name="b" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component></drt:system>)"},
        BadSystem{"undeclared_internal_wiring", R"(<drt:system name="s">
          <drt:component name="a" type="aperiodic">
            <implementation bincode="x"/>
            <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component>
          <drt:component name="b" type="aperiodic">
            <implementation bincode="x"/>
            <inport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
          </drt:component></drt:system>)"},
        BadSystem{"budget_exceeded", R"(<drt:system name="s">
          <drt:component name="a" type="periodic" cpuusage="0.6">
            <implementation bincode="x"/>
            <periodictask frequence="100" runoncpu="0" priority="3"/>
          </drt:component>
          <cpubudget cpu="0" limit="0.5"/></drt:system>)"},
        BadSystem{"bad_budget", R"(<drt:system name="s">
          <cpubudget cpu="0" limit="1.5"/></drt:system>)"}),
    [](const auto& info) { return info.param.name; });

TEST(SystemDescriptor, IncompatiblePortsInConnectionRejected) {
  auto parsed = parse_system_descriptor(R"(<drt:system name="s">
    <drt:component name="a" type="aperiodic">
      <implementation bincode="x"/>
      <outport name="p" interface="RTAI.SHM" type="Byte" size="4"/>
    </drt:component>
    <drt:component name="b" type="aperiodic">
      <implementation bincode="x"/>
      <inport name="p" interface="RTAI.SHM" type="Byte" size="8"/>
    </drt:component>
    <connection from="a.p" to="b.p"/></drt:system>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("incompatible"), std::string::npos);
}

// --------------------------------------------------------- DRCR deployment

class Echo : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      co_await job.next_cycle();
    }
  }
};

struct SystemDeployFixture : public ::testing::Test {
  SystemDeployFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    for (const char* bincode : {"sys.Cam", "sys.Roi"}) {
      drcr.factories().register_factory(
          bincode, [] { return std::make_unique<Echo>(); });
    }
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
};

TEST_F(SystemDeployFixture, DeploysWholeSystemAtomically) {
  auto system = parse_system_descriptor(kVisionSystem);
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE(drcr.deploy_system(system.value()).ok());
  EXPECT_EQ(drcr.state_of("camera").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("roi").value(), ComponentState::kActive);
  ASSERT_EQ(drcr.deployed_systems().size(), 1u);
  EXPECT_EQ(drcr.system_members("vision").size(), 2u);
  // Duplicate deployment rejected.
  EXPECT_FALSE(drcr.deploy_system(system.value()).ok());
}

TEST_F(SystemDeployFixture, UndeployRemovesAllMembers) {
  auto system = parse_system_descriptor(kVisionSystem);
  ASSERT_TRUE(drcr.deploy_system(system.value()).ok());
  ASSERT_TRUE(drcr.undeploy_system("vision").ok());
  EXPECT_FALSE(drcr.state_of("camera").has_value());
  EXPECT_FALSE(drcr.state_of("roi").has_value());
  EXPECT_TRUE(drcr.deployed_systems().empty());
  EXPECT_FALSE(drcr.undeploy_system("vision").ok());
  // Redeployment works after undeploy.
  EXPECT_TRUE(drcr.deploy_system(system.value()).ok());
}

TEST_F(SystemDeployFixture, NameClashWithExistingComponentAborts) {
  ComponentDescriptor squatter;
  squatter.name = "roi";
  squatter.bincode = "sys.Cam";
  squatter.type = rtos::TaskType::kAperiodic;
  ASSERT_TRUE(drcr.register_component(std::move(squatter)).ok());
  auto system = parse_system_descriptor(kVisionSystem);
  auto deployed = drcr.deploy_system(system.value());
  ASSERT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.error().code, "drcom.duplicate_component");
  // Nothing from the system leaked in.
  EXPECT_FALSE(drcr.state_of("camera").has_value());
  EXPECT_TRUE(drcr.deployed_systems().empty());
}

TEST_F(SystemDeployFixture, SystemWithInternalCycleDeploysAsGroup) {
  const char* cyclic = R"(<drt:system name="loop">
    <drt:component name="a" type="periodic" cpuusage="0.1">
      <implementation bincode="sys.Cam"/>
      <periodictask frequence="100" runoncpu="0" priority="3"/>
      <outport name="ab" interface="RTAI.SHM" type="Integer" size="2"/>
      <inport name="ba" interface="RTAI.SHM" type="Integer" size="2"/>
    </drt:component>
    <drt:component name="b" type="periodic" cpuusage="0.1">
      <implementation bincode="sys.Roi"/>
      <periodictask frequence="100" runoncpu="0" priority="3"/>
      <outport name="ba" interface="RTAI.SHM" type="Integer" size="2"/>
      <inport name="ab" interface="RTAI.SHM" type="Integer" size="2"/>
    </drt:component>
    <connection from="a.ab" to="b.ab"/>
    <connection from="b.ba" to="a.ba"/>
  </drt:system>)";
  auto system = parse_system_descriptor(cyclic);
  ASSERT_TRUE(system.ok()) << system.error().to_string();
  ASSERT_TRUE(drcr.deploy_system(system.value()).ok());
  EXPECT_EQ(drcr.active_count(), 2u);
}

}  // namespace
}  // namespace drt::drcom
