// The conservative parallel engine backend must be an invisible
// optimisation: every virtual-time output — event firing order, kernel
// traces, fuzzer action logs, final DRCR state, obs exports — must be
// byte-identical to the sequential reference backend.
//
// Three layers of coverage:
//   * the (time, seq, shard) total order itself (EventQueue and ShardCore
//     key composition, plus a cross-backend tie-break regression test),
//   * backend plumbing (migration via select_backend, shard handles,
//     cross-shard scheduling and the pooled remote_send message path),
//   * whole-stack differential runs: the same fuzz scenarios driven through
//     sequential and parallel worlds (same pattern as
//     test_resolver_incremental.cpp's cached-vs-from-scratch DRCR).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "rtos/engine_backend.hpp"
#include "rtos/kernel.hpp"
#include "rtos/sim_engine.hpp"
#include "test_helpers.hpp"
#include "testing/fuzzer.hpp"
#include "testing/scenario.hpp"
#include "util/logging.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

/// Fuzz scenarios deliberately provoke rejections (duplicate components,
/// stale targets); at differential-test volume those logs are pure noise.
class QuietLogs : public ::testing::Test {
  void SetUp() override { log::set_level(log::Level::kOff); }
  void TearDown() override { log::set_level(log::Level::kInfo); }
};
using Differential = QuietLogs;

// ------------------------------------------- (time, seq, shard) order ----

TEST(TotalOrder, EventQueuePopsByTimeThenKey) {
  EventQueue queue;
  std::vector<int> fired;
  auto record = [&](int tag) { return [&fired, tag] { fired.push_back(tag); }; };
  // Same timestamp, descending keys: insertion order must not matter.
  queue.push(0, 100, /*key=*/(3u << kShardIdBits) | 0, record(3));
  queue.push(0, 100, (1u << kShardIdBits) | 0, record(1));
  queue.push(0, 100, (2u << kShardIdBits) | 0, record(2));
  queue.push(0, 50, (9u << kShardIdBits) | 0, record(0));
  while (!queue.empty()) queue.pop()();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TotalOrder, CompositeKeyBreaksTiesBySeqThenShard) {
  // key = (seq << kShardIdBits) | shard, so at equal `when` a lower per-shard
  // sequence number always wins, and equal sequence numbers fall back to the
  // scheduling shard's id. This is the documented (time, seq, shard) total
  // order; keys are globally unique because the shard id is embedded.
  ShardCore s1;
  s1.shard = 1;
  ShardCore s2;
  s2.shard = 2;
  const std::uint64_t k_s1_1 = s1.make_key();  // seq 1, shard 1
  const std::uint64_t k_s2_1 = s2.make_key();  // seq 1, shard 2
  const std::uint64_t k_s1_2 = s1.make_key();  // seq 2, shard 1
  EXPECT_LT(k_s1_1, k_s2_1);  // equal seq: shard id breaks the tie
  EXPECT_LT(k_s2_1, k_s1_2);  // lower seq beats lower shard id
}

/// Schedules the same cross-shard script on a 4-shard backend of `kind` and
/// returns the order in which shard 0 executed the events. Shards 1..3 each
/// schedule onto shard 0 (in reverse shard order, to prove submission order
/// is irrelevant); every send is clamped to the same arrival time
/// (now + lookahead), so the (seq, shard) tie-break alone decides the order.
std::vector<int> tie_break_order(EngineKind kind) {
  SimEngine engine(
      EngineConfig{.kind = kind, .shards = 4, .lookahead = 1000});
  std::vector<std::unique_ptr<SimEngine>> handles;
  for (ShardId s = 1; s < 4; ++s) handles.push_back(engine.shard_handle(s));

  std::vector<int> fired;  // only shard 0's worker appends: no data race
  auto record = [&fired](int tag) { return [&fired, tag] { fired.push_back(tag); }; };
  // Submission order 3, 2, 1 — each shard's first send carries seq 1, so the
  // expected execution order is shard order 1, 2, 3 regardless.
  const EventId cross = handles[2]->schedule_on(0, 0, record(3));  // shard 3
  handles[1]->schedule_on(0, 0, record(2));                        // shard 2
  handles[0]->schedule_on(0, 0, record(1));                        // shard 1
  handles[0]->schedule_on(0, 0, record(4));  // shard 1 again: seq 2
  EXPECT_EQ(cross, kInvalidEvent);  // cross-shard sends are not cancellable
  engine.run_until(10'000);
  return fired;
}

TEST(TotalOrder, CrossShardTiesResolveBySeqThenShardOnBothBackends) {
  const std::vector<int> sequential = tie_break_order(EngineKind::kSequential);
  // (seq 1, shard 1), (seq 1, shard 2), (seq 1, shard 3), (seq 2, shard 1) —
  // independent of the order the sends were submitted in.
  EXPECT_EQ(sequential, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(tie_break_order(EngineKind::kParallel), sequential);
}

// ------------------------------------------------------ backend basics ----

TEST(ParallelBackend, SingleShardMatchesSequentialTimeline) {
  for (const auto kind : {EngineKind::kSequential, EngineKind::kParallel}) {
    SimEngine engine(EngineConfig{.kind = kind, .shards = 1});
    std::vector<SimTime> at;
    engine.schedule_at(300, [&] { at.push_back(engine.now()); });
    engine.schedule_at(100, [&] {
      at.push_back(engine.now());
      engine.schedule_after(50, [&] { at.push_back(engine.now()); });
    });
    EXPECT_EQ(engine.run_until(1000), 3u);
    EXPECT_EQ(at, (std::vector<SimTime>{100, 150, 300}));
    EXPECT_EQ(engine.now(), 1000);
    EXPECT_TRUE(engine.idle());
  }
}

TEST(ParallelBackend, RunToCompletionDrainsAndAlignsClocks) {
  SimEngine engine(EngineConfig{.kind = EngineKind::kParallel, .shards = 3});
  auto h1 = engine.shard_handle(1);
  auto h2 = engine.shard_handle(2);
  // The three events land in one lookahead window, so they execute
  // concurrently on three worker threads: the shared counter must be atomic.
  std::atomic<int> fired{0};
  engine.schedule_at(500, [&] { ++fired; });
  h1->schedule_at(900, [&] { ++fired; });
  h2->schedule_at(100, [&] { ++fired; });
  EXPECT_EQ(engine.run_to_completion(), 3u);
  EXPECT_EQ(fired.load(), 3);
  // Both backends end run_to_completion with every shard clock at the global
  // maximum fired time.
  EXPECT_EQ(engine.now(), 900);
  EXPECT_EQ(h1->now(), 900);
  EXPECT_EQ(h2->now(), 900);
}

TEST(ParallelBackend, SelectBackendMigratesPendingEventsAndIds) {
  SimEngine engine;  // default: sequential, one shard (the seed config)
  std::vector<int> fired;
  engine.schedule_at(100, [&] { fired.push_back(1); });
  const EventId doomed = engine.schedule_at(200, [&] { fired.push_back(99); });
  engine.schedule_at(300, [&] { fired.push_back(3); });
  ASSERT_NE(doomed, kInvalidEvent);

  auto selected = engine.select_backend(EngineConfig{
      .kind = EngineKind::kParallel, .shards = 2, .lookahead = 1000});
  ASSERT_TRUE(selected.ok()) << selected.error().to_string();
  EXPECT_EQ(engine.kind(), EngineKind::kParallel);
  EXPECT_EQ(engine.shards(), 2u);
  EXPECT_EQ(engine.pending_events(), 3u);

  // Ids issued by the old backend stay valid: the encoding is identical.
  engine.cancel(doomed);
  EXPECT_EQ(engine.run_until(1000), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));

  // Migrating back mid-life also works, and clocks survive.
  auto back = engine.select_backend(EngineConfig{
      .kind = EngineKind::kSequential, .shards = 2});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(engine.now(), 1000);
}

TEST(ParallelBackend, SelectBackendRejectsShrinkAndNonOwner) {
  SimEngine engine(EngineConfig{.kind = EngineKind::kParallel, .shards = 4});
  auto shrink = engine.select_backend(EngineConfig{
      .kind = EngineKind::kParallel, .shards = 2});
  ASSERT_FALSE(shrink.ok());
  EXPECT_EQ(shrink.error().ec, ErrorCode::kInvalidArgument);

  auto handle = engine.shard_handle(1);
  ASSERT_NE(handle, nullptr);
  auto not_owner = handle->select_backend(EngineConfig{});
  ASSERT_FALSE(not_owner.ok());
  EXPECT_EQ(not_owner.error().ec, ErrorCode::kInvalidState);

  EXPECT_EQ(engine.shard_handle(4), nullptr);  // out of range
}

// --------------------------------------------- cross-shard message path ----

TEST(RemoteSend, DeliversThroughSinkWithMinLatencyAndCountsMetric) {
  SimEngine engine(EngineConfig{.kind = EngineKind::kParallel, .shards = 2});
  auto remote = engine.shard_handle(1);

  KernelConfig config = quiet_config(1);
  config.latency.cross_group_jitter_ns = 0.0;  // delivery exactly at min
  RtKernel k0(engine, config);
  RtKernel k1(*remote, config);
  k0.metrics().enable();
  k1.metrics().enable();

  auto mailbox = k1.mailbox_create("rx", 8);
  ASSERT_TRUE(mailbox.ok());

  const std::string payload = "ping";
  ASSERT_TRUE(k0.remote_send(1, *mailbox.value(),
                             Message(payload.data(), payload.size())));
  // Out-of-range shard: refused, nothing scheduled.
  Message stray(payload.data(), payload.size());
  EXPECT_FALSE(k0.remote_send(7, *mailbox.value(), std::move(stray)));

  engine.run_until(1'000'000);
  auto received = k1.mailbox_try_receive(*mailbox.value());
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(received->data()),
                        received->size()),
            payload);

  const auto snap = k0.metrics().snapshot();
  bool saw_counter = false;
  for (const auto& counter : snap.counters) {
    if (counter.name == "rtos.remote_sent") {
      saw_counter = true;
      EXPECT_EQ(counter.value, 1u);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(RemoteSend, PinballAcrossShardsIsDeterministic) {
  // A message bounced between two per-shard kernels N times; both backends
  // must produce the identical delivery timeline.
  auto timeline = [](EngineKind kind) {
    SimEngine engine(EngineConfig{.kind = kind, .shards = 2});
    auto remote = engine.shard_handle(1);
    KernelConfig config = quiet_config(1);
    config.latency.cross_group_jitter_ns = 0.0;
    RtKernel k0(engine, config);
    RtKernel k1(*remote, config);
    auto mb0 = k0.mailbox_create("m0", 8);
    auto mb1 = k1.mailbox_create("m1", 8);
    EXPECT_TRUE(mb0.ok() && mb1.ok());

    // Bounce by polling from a timer on each side: receive on one shard,
    // immediately remote_send back to the other. Each side records into its
    // own vector — on the parallel backend the two polls run on different
    // worker threads, so a shared vector would be a data race (and TSan in
    // the nightly preset would rightly flag it).
    struct Bouncer {
      RtKernel* self;
      Mailbox* in;
      Mailbox* out;
      ShardId peer;
      std::vector<SimTime> hops;
      SimEngine* eng;
      int remaining;
      void poll() {
        if (auto msg = self->mailbox_try_receive(*in)) {
          hops.push_back(eng->now());
          if (remaining-- > 0) {
            self->remote_send(peer, *out, std::move(*msg));
          }
        }
        if (remaining >= 0) {
          eng->schedule_after(50'000, [this] { poll(); });
        }
      }
    };
    Bouncer b0{&k0, mb0.value(), mb1.value(), 1, {}, &engine, 4};
    Bouncer b1{&k1, mb1.value(), mb0.value(), 0, {}, remote.get(), 4};
    b0.poll();
    b1.poll();
    k0.remote_send(1, *mb1.value(), Message("go", 2));
    engine.run_until(5'000'000);
    return std::pair{std::move(b0.hops), std::move(b1.hops)};
  };
  const auto sequential = timeline(EngineKind::kSequential);
  EXPECT_GE(sequential.first.size() + sequential.second.size(), 5u);
  EXPECT_EQ(timeline(EngineKind::kParallel), sequential);
}

// ---------------------------------------- whole-stack differential runs ----

TEST_F(Differential, FuzzScenariosAreByteIdenticalAcrossBackends) {
  drt::testing::ScenarioConfig sequential_config;
  sequential_config.action_count = 30;
  drt::testing::ScenarioConfig parallel_config = sequential_config;
  parallel_config.engine = EngineKind::kParallel;

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto a = drt::testing::run_scenario(seed, sequential_config);
    const auto b = drt::testing::run_scenario(seed, parallel_config);
    ASSERT_FALSE(a.violated) << "seed " << seed;
    ASSERT_FALSE(b.violated) << "seed " << seed;
    // The action log captures every admission decision, component state
    // transition and command outcome; the trace is the kernel's scheduling
    // history. Byte-equality of both means the parallel backend changed
    // nothing observable.
    EXPECT_EQ(a.action_log, b.action_log) << "seed " << seed;
    EXPECT_EQ(a.trace_text, b.trace_text) << "seed " << seed;
  }
}

/// Strips the ipc.pool.* lines from an export: the pool gauges are
/// process-global (they sum every thread pool that ever lived in this test
/// binary), so within one process they depend on which tests ran before, not
/// on the engine backend. Across fresh processes they are byte-identical —
/// that is what the golden-file test pins.
std::string without_pool_lines(const std::string& text) {
  std::string out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    if (line.find("ipc.pool.") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    start = end + 1;
  }
  return out;
}

TEST_F(Differential, ObsExportsAreByteIdenticalAcrossBackends) {
  const std::uint64_t seed = 7;
  drt::testing::ScenarioConfig config;
  config.action_count = 30;

  auto export_world = [&](EngineKind kind) {
    drt::testing::ScenarioConfig world_config = config;
    world_config.engine = kind;
    drt::testing::FuzzWorld world(seed, world_config);
    for (const auto& action :
         drt::testing::generate_actions(seed, world_config)) {
      world.apply(action);
    }
    const obs::ObsSnapshot snap = world.drcr.observe();
    return std::pair{without_pool_lines(obs::JsonExporter().render(snap)),
                     without_pool_lines(obs::PrometheusExporter().render(snap))};
  };

  const auto sequential = export_world(EngineKind::kSequential);
  const auto parallel = export_world(EngineKind::kParallel);
  EXPECT_EQ(sequential.first, parallel.first);
  EXPECT_EQ(sequential.second, parallel.second);
}

}  // namespace
}  // namespace drt::rtos
