// Foundations: Result, statistics (Table-1 columns), strings, RNG, types.
#include <gtest/gtest.h>

#include <cmath>

#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

namespace drt {
namespace {

// ------------------------------------------------------------------ Result

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = make_error("x.code", "boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "x.code");
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_EQ(r.error().to_string(), "x.code: boom");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = Result<void>::success();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = make_error("x", "y");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "x");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r = std::string("hello");
  std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "hello");
}

// ------------------------------------------------------------------- stats

TEST(Stats, SummaryMatchesTable1Columns) {
  // AVEDEV is the mean absolute deviation from the mean (the spreadsheet
  // function the paper used for Table 1).
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 6.0};
  const auto s = summarize(samples);
  EXPECT_DOUBLE_EQ(s.average, 4.0);
  EXPECT_DOUBLE_EQ(s.avedev, 0.8);  // (2+0+0+0+2)/5
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, EmptySummaryIsZeroed) {
  const auto s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.average, 0.0);
}

TEST(Stats, NegativeSamplesSupported) {
  // Latencies in this reproduction are routinely negative (early timer).
  const std::vector<double> samples = {-21'000.0, -21'500.0, -20'500.0};
  const auto s = summarize(samples);
  EXPECT_NEAR(s.average, -21'000.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, -21'500.0);
  EXPECT_DOUBLE_EQ(s.max, -20'500.0);
}

TEST(Stats, SampleSeriesPercentile) {
  SampleSeries series;
  for (int i = 1; i <= 100; ++i) series.add(i);
  EXPECT_DOUBLE_EQ(series.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(series.percentile(100), 100.0);
  EXPECT_NEAR(series.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(series.percentile(99), 99.01, 0.1);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats running;
  const std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8};
  for (double s : samples) running.add(s);
  EXPECT_DOUBLE_EQ(running.mean(), 4.5);
  EXPECT_DOUBLE_EQ(running.min(), 1.0);
  EXPECT_DOUBLE_EQ(running.max(), 8.0);
  EXPECT_NEAR(running.stddev(), 2.29128, 1e-4);  // population stddev
}

TEST(Stats, HistogramBucketsAndSaturation) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);   // bucket 0
  hist.add(9.99);  // bucket 4
  hist.add(-3.0);  // below range -> bucket 0
  hist.add(42.0);  // above range -> bucket 4
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(4), 2u);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(1), 4.0);
  EXPECT_FALSE(hist.render().empty());
}

// ----------------------------------------------------------------- strings

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  x  "), "x");
  EXPECT_EQ(str::trim("\t\na b\r "), "a b");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto pieces = str::split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(Strings, SplitNonEmptyDropsBlanks) {
  const auto pieces = str::split_non_empty(" a , , b ,", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(str::to_lower("AbC"), "abc");
  EXPECT_EQ(str::to_upper("AbC"), "ABC");
  EXPECT_TRUE(str::iequals("RTAI.SHM", "rtai.shm"));
  EXPECT_FALSE(str::iequals("a", "ab"));
}

TEST(Strings, StrictIntParsing) {
  EXPECT_EQ(str::parse_int("42").value(), 42);
  EXPECT_EQ(str::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(str::parse_int("42x").has_value());
  EXPECT_FALSE(str::parse_int("").has_value());
  EXPECT_FALSE(str::parse_int("4.2").has_value());
}

TEST(Strings, StrictDoubleParsing) {
  EXPECT_DOUBLE_EQ(str::parse_double("0.1").value(), 0.1);
  EXPECT_DOUBLE_EQ(str::parse_double("-3e2").value(), -300.0);
  EXPECT_FALSE(str::parse_double("1.0.0").has_value());
  EXPECT_FALSE(str::parse_double("abc").has_value());
}

TEST(Strings, BoolParsing) {
  EXPECT_TRUE(str::parse_bool("true").value());
  EXPECT_FALSE(str::parse_bool("FALSE").value());
  EXPECT_FALSE(str::parse_bool("1").has_value());
}

TEST(Strings, PrefixSuffixJoin) {
  EXPECT_TRUE(str::starts_with("drcom.DRCR", "drcom."));
  EXPECT_TRUE(str::ends_with("a.xml", ".xml"));
  EXPECT_FALSE(str::starts_with("x", "xy"));
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({}, ","), "");
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DegenerateOrInvertedRangeReturnsLow) {
  // hi < lo used to be modulo-by-zero UB; it must clamp to lo instead.
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5);
  EXPECT_EQ(rng.uniform(5, 4), 5);
  EXPECT_EQ(rng.uniform(-3, -7), -3);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(stddev, 2.0, 0.05);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ChanceProbabilityConverges) {
  Rng rng(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// ------------------------------------------------------------------- types

TEST(Types, PeriodFromHz) {
  EXPECT_EQ(period_from_hz(1000.0), milliseconds(1));
  EXPECT_EQ(period_from_hz(4.0), milliseconds(250));
  EXPECT_EQ(period_from_hz(0.0), kSimTimeNever);
  EXPECT_EQ(period_from_hz(-1.0), kSimTimeNever);
  EXPECT_EQ(period_from_hz(2e9), 1);  // clamped to 1 ns
}

TEST(Types, DurationHelpers) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
}

}  // namespace
}  // namespace drt
