// Mode-change protocol (docs/MODES.md): transitions between QoS modes must
// be admission-checked before commit, shrink-first during application, and
// fully reversible — plus the DeadlineResolver's warm (batch-session) path
// must take bit-identical decisions to the cold from-scratch scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "drcom/adaptation.hpp"
#include "drcom/drcr.hpp"
#include "drcom/mode_change.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

class IdleComponent : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) co_await job.next_cycle();
  }
};

struct ModeWorld {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;

  ModeWorld()
      : kernel(engine, quiet_config(2)),
        drcr(framework, kernel, make_config()) {
    drcr.factories().register_factory(
        "mode.X", [] { return std::make_unique<IdleComponent>(); });
  }

  static DrcrConfig make_config() {
    DrcrConfig config;
    config.cpu_budget = 0.9;
    return config;
  }
};

ComponentDescriptor mode_component(std::string name, double base, CpuId cpu,
                                   double hz = 100.0, int priority = 5) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "mode.X";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = base;
  d.periodic = PeriodicSpec{hz, cpu, priority};
  return d;
}

ModeSpec budget_mode(std::string name, double usage) {
  ModeSpec spec;
  spec.name = std::move(name);
  spec.cpu_usage = usage;
  return spec;
}

ModeSpec absent_mode(std::string name) {
  ModeSpec spec;
  spec.name = std::move(name);
  spec.present = false;
  return spec;
}

// --------------------------------------------------- budget re-folding ----

TEST(ModeChange, TransitionRebudgetsActiveComponentsAndBack) {
  ModeWorld world;
  auto a = mode_component("a", 0.3, 0);
  a.modes.push_back(budget_mode("degraded", 0.1));
  auto b = mode_component("b", 0.4, 0);
  b.modes.push_back(budget_mode("degraded", 0.2));
  ASSERT_TRUE(world.drcr.register_component(std::move(a)).ok());
  ASSERT_TRUE(world.drcr.register_component(std::move(b)).ok());
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.3 + 0.4);

  ModeChangeController& modes = world.drcr.mode_controller();
  ASSERT_TRUE(modes.transition_to("degraded").ok());
  EXPECT_EQ(modes.current_mode(), "degraded");
  // The cache's fold is exact: the new sum is the left-fold 0.1 then 0.2.
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.1 + 0.2);
  ASSERT_EQ(modes.history().size(), 1u);
  EXPECT_TRUE(modes.history().back().committed);
  EXPECT_EQ(modes.history().back().budget_changes, 2u);
  EXPECT_EQ(modes.transitions(), 1u);

  // Back to base: the side-tabled base budgets are restored exactly.
  ASSERT_TRUE(modes.transition_to("").ok());
  EXPECT_EQ(modes.current_mode(), "");
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.3 + 0.4);
  EXPECT_EQ(modes.base_usage_of("a", -1.0), 0.3);
}

TEST(ModeChange, TransitionToCurrentModeIsANoop) {
  ModeWorld world;
  ModeChangeController& modes = world.drcr.mode_controller();
  ASSERT_TRUE(modes.transition_to("").ok());
  EXPECT_TRUE(modes.history().empty());
  EXPECT_EQ(modes.transitions(), 0u);
}

// --------------------------------------------------------- rollback ------

TEST(ModeChange, RejectedTargetModeLeavesEverythingUntouched) {
  ModeWorld world;
  auto a = mode_component("a", 0.3, 0);
  a.modes.push_back(budget_mode("high", 0.8));
  auto b = mode_component("b", 0.4, 0);
  b.modes.push_back(budget_mode("high", 0.8));
  ASSERT_TRUE(world.drcr.register_component(std::move(a)).ok());
  ASSERT_TRUE(world.drcr.register_component(std::move(b)).ok());

  ModeChangeController& modes = world.drcr.mode_controller();
  auto result = modes.transition_to("high");  // projects 1.6 > 0.9
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "drcom.mode_rejected");
  // Rejection happens BEFORE any state is touched — nothing to roll back.
  EXPECT_EQ(modes.current_mode(), "");
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.3 + 0.4);
  EXPECT_EQ(world.drcr.state_of("a"), ComponentState::kActive);
  EXPECT_EQ(world.drcr.state_of("b"), ComponentState::kActive);
  ASSERT_EQ(modes.history().size(), 1u);
  EXPECT_FALSE(modes.history().back().committed);
  EXPECT_EQ(modes.rejections(), 1u);
}

TEST(ModeChange, SkipAdmissionCheckHookCommitsBlindly) {
  // The fuzzer's planted-bug hook: with the pre-check disabled the unsafe
  // transition COMMITS — the oracle (invariant 10), not the controller, is
  // then the only line of defence.
  ModeWorld world;
  auto a = mode_component("a", 0.3, 0);
  a.modes.push_back(budget_mode("high", 0.8));
  auto b = mode_component("b", 0.4, 0);
  b.modes.push_back(budget_mode("high", 0.8));
  ASSERT_TRUE(world.drcr.register_component(std::move(a)).ok());
  ASSERT_TRUE(world.drcr.register_component(std::move(b)).ok());
  ModeChangeController& modes = world.drcr.mode_controller();
  modes.set_skip_admission_check(true);
  ASSERT_TRUE(modes.transition_to("high").ok());
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.8 + 0.8);
}

// ------------------------------------------- optional drop and restore ----

TEST(ModeChange, OptionalComponentDroppedAndRestored) {
  ModeWorld world;
  auto opt = mode_component("opt", 0.2, 0);
  opt.modes.push_back(absent_mode("crisis"));
  auto keep = mode_component("keep", 0.2, 0);
  ASSERT_TRUE(world.drcr.register_component(std::move(opt)).ok());
  ASSERT_TRUE(world.drcr.register_component(std::move(keep)).ok());

  ModeChangeController& modes = world.drcr.mode_controller();
  ASSERT_TRUE(modes.transition_to("crisis").ok());
  EXPECT_NE(world.drcr.state_of("opt"), ComponentState::kActive);
  EXPECT_TRUE(modes.dropped_components().contains("opt"));
  // Mode-less components ride through untouched.
  EXPECT_EQ(world.drcr.state_of("keep"), ComponentState::kActive);
  EXPECT_EQ(modes.history().back().drops, 1u);

  ASSERT_TRUE(modes.transition_to("").ok());
  EXPECT_EQ(world.drcr.state_of("opt"), ComponentState::kActive);
  EXPECT_TRUE(modes.dropped_components().empty());
  EXPECT_EQ(modes.history().back().restores, 1u);
}

TEST(ModeChange, FreedBudgetReadmitsUnsatisfiedComponents) {
  ModeWorld world;
  auto big = mode_component("big", 0.5, 0);
  big.modes.push_back(budget_mode("degraded", 0.2));
  ASSERT_TRUE(world.drcr.register_component(std::move(big)).ok());
  // 0.5 + 0.5 > 0.9: "wait" stays unsatisfied at base budgets.
  ASSERT_TRUE(world.drcr.register_component(mode_component("wait", 0.5, 0))
                  .ok());
  EXPECT_EQ(world.drcr.state_of("wait"), ComponentState::kUnsatisfied);

  // The shrink frees 0.3; the transition's closing resolve() re-admits.
  ASSERT_TRUE(world.drcr.mode_controller().transition_to("degraded").ok());
  EXPECT_EQ(world.drcr.state_of("wait"), ComponentState::kActive);
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.2 + 0.5);
}

// -------------------------------------------------- bounded settling ------

TEST(ModeChange, SettlingWindowIsTheLongestAffectedPeriod) {
  ModeWorld world;
  auto fast = mode_component("fast", 0.2, 0, 100.0);  // 10ms period
  fast.modes.push_back(budget_mode("degraded", 0.1));
  auto slow = mode_component("slow", 0.2, 0, 25.0);   // 40ms period
  slow.modes.push_back(budget_mode("degraded", 0.1));
  ASSERT_TRUE(world.drcr.register_component(std::move(fast)).ok());
  ASSERT_TRUE(world.drcr.register_component(std::move(slow)).ok());

  world.engine.run_until(milliseconds(7));
  ModeChangeController& modes = world.drcr.mode_controller();
  ASSERT_TRUE(modes.transition_to("degraded").ok());
  const ModeTransition& t = modes.history().back();
  EXPECT_EQ(t.when, milliseconds(7));
  // Bounded latency: the settling window is one period of the slowest
  // touched component, not unbounded.
  EXPECT_EQ(t.window_end - t.when, period_from_hz(25.0));
}

// ---------------------------------------------- adaptation integration ----

class BombComponent : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    co_await job.consume(microseconds(10));
    throw std::runtime_error("boom");
  }
};

TEST(ModeChange, QosActionDegradesAndRecoveryHysteresisRestores) {
  ModeWorld world;
  world.drcr.factories().register_factory(
      "mode.Bomb", [] { return std::make_unique<BombComponent>(); });
  auto a = mode_component("a", 0.3, 0);
  a.modes.push_back(budget_mode("degraded", 0.1));
  ASSERT_TRUE(world.drcr.register_component(std::move(a)).ok());
  auto f = mode_component("f", 0.1, 1);
  f.bincode = "mode.Bomb";
  ASSERT_TRUE(world.drcr.register_component(std::move(f)).ok());

  AdaptationConfig config;
  config.policies = {{AdaptationTrigger::kQosRule,
                      QosActionKind::kModeChange, 1}};
  config.degraded_mode = "degraded";
  config.recovery_polls = 2;  // recovery_mode defaults to "" = base
  AdaptationManager manager(world.drcr, config);
  QosRule rule;
  rule.detect_failure = true;  // latches: trips once, later passes are clean
  manager.add_rule(rule);

  world.engine.run_until(milliseconds(30));  // the bomb has gone off
  manager.evaluate_now();  // failure trips -> kModeChange degrades
  ASSERT_EQ(manager.violations().size(), 1u);
  EXPECT_EQ(world.drcr.mode_controller().current_mode(), "degraded");
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.1);

  manager.evaluate_now();  // clean pass 1 of 2: hysteresis holds the mode
  EXPECT_EQ(world.drcr.mode_controller().current_mode(), "degraded");
  manager.evaluate_now();  // clean pass 2 -> automatic recovery
  EXPECT_EQ(world.drcr.mode_controller().current_mode(), "");
  EXPECT_EQ(world.drcr.system_view().declared_utilization(0), 0.3);
}

// ----------------------- DeadlineResolver warm vs cold differential -------

struct EdfWorld {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;

  explicit EdfWorld(bool incremental)
      : kernel(engine, quiet_config(2)),
        drcr(framework, kernel, make_config(incremental)) {
    drcr.factories().register_factory(
        "mode.X", [] { return std::make_unique<IdleComponent>(); });
    drcr.set_internal_resolver(std::make_unique<DeadlineResolver>(0.9));
  }

  static DrcrConfig make_config(bool incremental) {
    DrcrConfig config;
    config.cpu_budget = 0.9;
    config.incremental_admission = incremental;
    return config;
  }
};

ComponentDescriptor random_edf_descriptor(std::mt19937_64& rng,
                                          const std::string& name) {
  static const double kUsages[] = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3};
  static const double kRates[] = {100.0, 200.0, 250.0, 500.0};
  ComponentDescriptor d;
  d.name = name;
  d.bincode = "mode.X";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = kUsages[rng() % std::size(kUsages)];
  d.enabled = rng() % 5 != 0;
  const CpuId cpu = static_cast<CpuId>(rng() % 2);
  PeriodicSpec spec;
  spec.frequency_hz = kRates[rng() % std::size(kRates)];
  spec.run_on_cpu = cpu;
  spec.priority = 5;
  spec.sched = rtos::SchedClass::kDeadline;
  if (rng() % 3 == 0) {
    // Constrained deadline at 60% of the period: brings the density test in.
    spec.deadline = static_cast<SimDuration>(
        0.6 * static_cast<double>(period_from_hz(spec.frequency_hz)));
  }
  d.periodic = spec;
  return d;
}

TEST(DeadlineResolverDifferential, WarmSessionsMatchColdScansBitForBit) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
    EdfWorld warm(true);
    EdfWorld cold(false);
    const std::vector<std::string> pool = {"e0", "e1", "e2", "e3", "e4",
                                           "e5", "e6", "e7"};
    for (int step = 0; step < 100; ++step) {
      const std::string& name = pool[rng() % pool.size()];
      const bool known = warm.drcr.state_of(name).has_value();
      const auto op = rng() % 10;
      if (op < 5) {
        if (!known) {
          const ComponentDescriptor d = random_edf_descriptor(rng, name);
          const auto r1 = warm.drcr.register_component(d);
          const auto r2 = cold.drcr.register_component(d);
          ASSERT_EQ(r1.ok(), r2.ok()) << "step " << step;
        }
      } else if (op < 7) {
        if (known) {
          (void)warm.drcr.unregister_component(name);
          (void)cold.drcr.unregister_component(name);
        }
      } else if (op < 8) {
        if (known) {
          (void)warm.drcr.enable_component(name);
          (void)cold.drcr.enable_component(name);
        }
      } else if (op < 9) {
        if (known) {
          (void)warm.drcr.disable_component(name);
          (void)cold.drcr.disable_component(name);
        }
      } else {
        warm.drcr.resolve();
        cold.drcr.resolve();
      }
      ASSERT_EQ(warm.drcr.component_names(), cold.drcr.component_names())
          << "step " << step;
      EXPECT_EQ(warm.drcr.active_count(), cold.drcr.active_count())
          << "step " << step;
      for (const std::string& c : pool) {
        EXPECT_EQ(warm.drcr.state_of(c), cold.drcr.state_of(c))
            << "step " << step << " component " << c;
        const auto warm_health = warm.drcr.component_health(c);
        const auto cold_health = cold.drcr.component_health(c);
        ASSERT_EQ(warm_health.has_value(), cold_health.has_value())
            << "step " << step << " component " << c;
        if (warm_health.has_value()) {
          EXPECT_EQ(warm_health->reason, cold_health->reason)
              << "step " << step << " component " << c;
        }
      }
      const SystemView a = warm.drcr.system_view();
      const SystemView b = cold.drcr.system_view();
      for (CpuId cpu = 0; cpu < 2; ++cpu) {
        EXPECT_EQ(a.declared_utilization(cpu), b.declared_utilization(cpu))
            << "step " << step << " cpu " << cpu;
      }
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure()) {
        FAIL() << "divergence at seed " << seed << " step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace drt::drcom
