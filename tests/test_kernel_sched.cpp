// Scheduler semantics: creation validation, demand accounting, priorities,
// preemption, round-robin, CPU pinning, suspension, deletion, errors.
//
// All tests run with the quiet configuration (test_helpers.hpp): zero context
// switch cost and zero timer/wake latency, so completion times are exact.
#include <gtest/gtest.h>

#include <vector>

#include "rtos/kernel.hpp"
#include "test_helpers.hpp"

namespace drt::rtos {
namespace {

using testing::quiet_config;

TaskParams aperiodic(std::string name, int priority = 10, CpuId cpu = 0) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kAperiodic;
  params.priority = priority;
  params.cpu = cpu;
  return params;
}

TaskParams periodic(std::string name, SimDuration period, int priority = 10,
                    CpuId cpu = 0) {
  TaskParams params;
  params.name = std::move(name);
  params.type = TaskType::kPeriodic;
  params.period = period;
  params.priority = priority;
  params.cpu = cpu;
  return params;
}

// ------------------------------------------------------------- validation

TEST(KernelCreate, RejectsEmptyName) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto result = kernel.create_task(aperiodic(""), [](TaskContext&) -> TaskCoro {
    co_return;
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "rtos.bad_task");
}

TEST(KernelCreate, RejectsDuplicateName) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto body = [](TaskContext&) -> TaskCoro { co_return; };
  ASSERT_TRUE(kernel.create_task(aperiodic("a"), body).ok());
  auto dup = kernel.create_task(aperiodic("a"), body);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, "rtos.duplicate_task");
}

TEST(KernelCreate, RejectsOutOfRangeCpu) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config(2));
  auto result = kernel.create_task(aperiodic("a", 10, 7),
                                   [](TaskContext&) -> TaskCoro { co_return; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "rtos.bad_task");
}

TEST(KernelCreate, RejectsPeriodicWithoutPeriod) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto result = kernel.create_task(periodic("p", 0),
                                   [](TaskContext&) -> TaskCoro { co_return; });
  ASSERT_FALSE(result.ok());
}

TEST(KernelCreate, RejectsNullBody) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto result = kernel.create_task(aperiodic("a"), TaskBody{});
  ASSERT_FALSE(result.ok());
}

TEST(KernelCreate, FindsTaskByNameAndId) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(aperiodic("sensor"),
                               [](TaskContext&) -> TaskCoro { co_return; });
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(kernel.find_task("sensor"), kernel.find_task(id.value()));
  EXPECT_EQ(kernel.find_task("nonexistent"), nullptr);
}

// --------------------------------------------------------- demand serving

TEST(KernelDemand, ConsumeAdvancesVirtualTime) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  SimTime finished = -1;
  auto id = kernel.create_task(
      aperiodic("work"), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(microseconds(250));
        finished = ctx.now();
      });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(finished, microseconds(250));
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
}

TEST(KernelDemand, SequentialConsumesAccumulate) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::vector<SimTime> marks;
  auto id = kernel.create_task(
      aperiodic("work"), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(microseconds(100));
        marks.push_back(ctx.now());
        co_await ctx.consume(microseconds(200));
        marks.push_back(ctx.now());
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0], microseconds(100));
  EXPECT_EQ(marks[1], microseconds(300));
}

TEST(KernelDemand, ContextSwitchCostIsCharged) {
  auto config = quiet_config();
  config.context_switch_ns = 900;
  SimEngine engine;
  RtKernel kernel(engine, config);
  SimTime finished = -1;
  auto id = kernel.create_task(
      aperiodic("work"), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(1'000);
        finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  // One dispatch charges one switch; the consume resumes the same dispatch.
  EXPECT_EQ(finished, 1'900);
}

TEST(KernelDemand, CpuBusyTimeAccounted) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      aperiodic("work"), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(microseconds(500));
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(kernel.cpu_busy_time(0), microseconds(500));
  EXPECT_EQ(kernel.cpu_busy_time(1), 0);
  EXPECT_EQ(kernel.find_task(id.value())->stats.cpu_time, microseconds(500));
}

TEST(KernelDemand, SleepDoesNotConsumeCpu) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  SimTime finished = -1;
  auto id = kernel.create_task(
      aperiodic("idle"), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.sleep_for(microseconds(300));
        finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(finished, microseconds(300));
  EXPECT_EQ(kernel.cpu_busy_time(0), 0);
}

// ----------------------------------------------------- priority/preemption

TEST(KernelPriority, HigherPriorityPreemptsLower) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  SimTime low_finished = -1;
  SimTime high_finished = -1;
  // Low priority (larger number) runs a 10ms job from t=0.
  auto low = kernel.create_task(
      aperiodic("low", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(10));
        low_finished = ctx.now();
      });
  // High priority arrives at t=2ms with a 1ms job.
  auto high = kernel.create_task(
      aperiodic("high", 1), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(1));
        high_finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(low.value()).ok());
  ASSERT_TRUE(kernel.start_task(high.value(), milliseconds(2)).ok());
  engine.run_until(milliseconds(20));
  // High runs 2..3ms; low is preempted for 1ms and finishes at 11ms.
  EXPECT_EQ(high_finished, milliseconds(3));
  EXPECT_EQ(low_finished, milliseconds(11));
  EXPECT_EQ(kernel.find_task(low.value())->stats.preemptions, 1u);
}

TEST(KernelPriority, EqualPriorityDoesNotPreempt) {
  SimEngine engine;
  auto config = quiet_config();
  config.default_rr_quantum = milliseconds(100);  // no rotation in this test
  RtKernel kernel(engine, config);
  SimTime first_finished = -1;
  SimTime second_finished = -1;
  auto first = kernel.create_task(
      aperiodic("first", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(4));
        first_finished = ctx.now();
      });
  auto second = kernel.create_task(
      aperiodic("second", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(2));
        second_finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(first.value()).ok());
  ASSERT_TRUE(kernel.start_task(second.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(20));
  EXPECT_EQ(first_finished, milliseconds(4));   // runs to completion
  EXPECT_EQ(second_finished, milliseconds(6));  // then second
  EXPECT_EQ(kernel.find_task(first.value())->stats.preemptions, 0u);
}

TEST(KernelPriority, RoundRobinRotatesAtQuantum) {
  SimEngine engine;
  auto config = quiet_config();
  config.default_rr_quantum = milliseconds(1);
  RtKernel kernel(engine, config);
  SimTime a_finished = -1;
  SimTime b_finished = -1;
  auto a = kernel.create_task(
      aperiodic("a", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(3));
        a_finished = ctx.now();
      });
  auto b = kernel.create_task(
      aperiodic("b", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(3));
        b_finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(milliseconds(20));
  // Interleaved 1ms slices: a runs [0,1),[2,3),[4,5); b runs [1,2),[3,4),[5,6).
  EXPECT_EQ(a_finished, milliseconds(5));
  EXPECT_EQ(b_finished, milliseconds(6));
}

TEST(KernelPriority, PreemptedTaskResumesBeforeLaterArrivals) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  std::vector<std::string> finish_order;
  auto victim = kernel.create_task(
      aperiodic("victim", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(4));
        finish_order.push_back("victim");
      });
  auto intruder = kernel.create_task(
      aperiodic("intrud", 1), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(1));
        finish_order.push_back("intruder");
      });
  // Same-priority competitor arriving while the victim is preempted.
  auto late = kernel.create_task(
      aperiodic("late", 5), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(1));
        finish_order.push_back("late");
      });
  ASSERT_TRUE(kernel.start_task(victim.value()).ok());
  ASSERT_TRUE(kernel.start_task(intruder.value(), milliseconds(1)).ok());
  ASSERT_TRUE(kernel.start_task(late.value(), milliseconds(1)).ok());
  engine.run_until(milliseconds(20));
  ASSERT_EQ(finish_order.size(), 3u);
  EXPECT_EQ(finish_order[0], "intruder");
  // The preempted victim continues before the later same-priority arrival.
  EXPECT_EQ(finish_order[1], "victim");
  EXPECT_EQ(finish_order[2], "late");
}

TEST(KernelPriority, CpuPinningIsolatesLoads) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config(2));
  SimTime a_finished = -1;
  SimTime b_finished = -1;
  auto a = kernel.create_task(
      aperiodic("a", 5, 0), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(5));
        a_finished = ctx.now();
      });
  auto b = kernel.create_task(
      aperiodic("b", 5, 1), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(5));
        b_finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(a.value()).ok());
  ASSERT_TRUE(kernel.start_task(b.value()).ok());
  engine.run_until(milliseconds(20));
  // True parallelism: both finish at 5ms, not serialized.
  EXPECT_EQ(a_finished, milliseconds(5));
  EXPECT_EQ(b_finished, milliseconds(5));
}

// ------------------------------------------------------ suspension & stop

TEST(KernelSuspend, SuspendFreezesRunningTask) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  SimTime finished = -1;
  auto id = kernel.create_task(
      aperiodic("work"), [&](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(10));
        finished = ctx.now();
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(3));
  ASSERT_TRUE(kernel.suspend_task(id.value()).ok());
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kSuspended);
  engine.run_until(milliseconds(30));
  EXPECT_EQ(finished, -1);  // frozen
  ASSERT_TRUE(kernel.resume_task(id.value()).ok());
  engine.run_until(milliseconds(60));
  // 3ms served before suspension + 7ms after resume at t=30ms.
  EXPECT_EQ(finished, milliseconds(37));
}

TEST(KernelSuspend, SuspendIsIdempotentAndValidated) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      aperiodic("work"), [](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(milliseconds(10));
      });
  // Not started yet -> cannot suspend.
  EXPECT_FALSE(kernel.suspend_task(id.value()).ok());
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_TRUE(kernel.suspend_task(id.value()).ok());
  EXPECT_TRUE(kernel.suspend_task(id.value()).ok());  // idempotent
  EXPECT_FALSE(kernel.resume_task(999).ok());
  ASSERT_TRUE(kernel.resume_task(id.value()).ok());
  EXPECT_FALSE(kernel.resume_task(id.value()).ok());  // not suspended now
}

TEST(KernelStop, RequestStopIsCooperative) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  int cycles = 0;
  auto id = kernel.create_task(
      aperiodic("loop"), [&](TaskContext& ctx) -> TaskCoro {
        while (!ctx.stop_requested()) {
          co_await ctx.consume(microseconds(100));
          co_await ctx.sleep_for(microseconds(900));
          ++cycles;
        }
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(5));
  ASSERT_TRUE(kernel.request_stop(id.value()).ok());
  engine.run_until(milliseconds(10));
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
  EXPECT_GT(cycles, 0);
  const int cycles_at_stop = cycles;
  engine.run_until(milliseconds(20));
  EXPECT_EQ(cycles, cycles_at_stop);
}

TEST(KernelDelete, DeleteDestroysBlockedTask) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  bool destructor_ran = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  auto id = kernel.create_task(
      aperiodic("work"), [&](TaskContext& ctx) -> TaskCoro {
        Sentinel sentinel{&destructor_ran};
        co_await ctx.sleep_for(seconds(100));
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  ASSERT_TRUE(kernel.delete_task(id.value()).ok());
  // Coroutine frame destroyed -> locals destructed (RAII holds).
  EXPECT_TRUE(destructor_ran);
  EXPECT_EQ(kernel.find_task(id.value())->state, TaskState::kFinished);
}

TEST(KernelError, BodyExceptionIsCaptured) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      aperiodic("boom"), [](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(1'000);
        throw std::runtime_error("bang");
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  const Task* task = kernel.find_task(id.value());
  EXPECT_EQ(task->state, TaskState::kFinished);
  ASSERT_TRUE(task->error != nullptr);
  EXPECT_THROW(std::rethrow_exception(task->error), std::runtime_error);
}

TEST(KernelError, WaitPeriodOnAperiodicTaskFails) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      aperiodic("bad"), [](TaskContext& ctx) -> TaskCoro {
        co_await ctx.wait_next_period();  // throws std::logic_error
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  const Task* task = kernel.find_task(id.value());
  EXPECT_EQ(task->state, TaskState::kFinished);
  EXPECT_TRUE(task->error != nullptr);
}

// ----------------------------------------------------------------- trace

TEST(KernelTrace, RecordsDispatchAndFinish) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  kernel.trace().enable();
  auto id = kernel.create_task(
      aperiodic("work"), [](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(1'000);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_FALSE(kernel.trace().filter(TraceKind::kTaskCreated).empty());
  EXPECT_FALSE(kernel.trace().filter(TraceKind::kDispatched).empty());
  EXPECT_FALSE(kernel.trace().filter(TraceKind::kFinished).empty());
}

TEST(KernelTrace, DisabledTraceRecordsNothing) {
  SimEngine engine;
  RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      aperiodic("work"), [](TaskContext& ctx) -> TaskCoro {
        co_await ctx.consume(1'000);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_TRUE(kernel.trace().events().empty());
}

}  // namespace
}  // namespace drt::rtos
