// Edge cases across module boundaries that the main suites don't reach.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "osgi/event_admin.hpp"
#include "test_helpers.hpp"

namespace drt {
namespace {

using rtos::testing::quiet_config;

TEST(RegistryEdge, SetPropertiesAfterUnregisterIsNoOp) {
  osgi::ServiceRegistry registry;
  auto registration =
      registry.register_service(1, {"a"}, std::make_shared<int>(1), {});
  registration.unregister();
  osgi::Properties props;
  props.set("x", std::int64_t{1});
  registration.set_properties(props);  // must not crash or fire events
  registration.unregister();           // double unregister: no-op
  EXPECT_FALSE(registration.is_valid());
}

TEST(RegistryEdge, DefaultConstructedHandlesAreInert) {
  osgi::ServiceReference reference;
  EXPECT_FALSE(reference.is_valid());
  EXPECT_EQ(reference.service_id(), 0u);
  EXPECT_TRUE(reference.properties().empty());
  osgi::ServiceRegistration registration;
  EXPECT_FALSE(registration.is_valid());
  registration.unregister();  // no-op
}

TEST(EventAdminEdge, UnsubscribeUnknownTokenIsNoOp) {
  osgi::EventAdmin bus;
  bus.unsubscribe(12345);
  bus.post("t");  // no subscribers: fine
  EXPECT_EQ(bus.delivered_count(), 0u);
}

TEST(DrcrEdge, UndeploySystemWithExternalDependentCascades) {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel(engine, quiet_config());
  drcom::Drcr drcr(framework, kernel);
  class Echo : public drcom::RtComponent {
   public:
    rtos::TaskCoro run(drcom::JobContext& job) override {
      while (job.active()) {
        co_await job.consume(1'000);
        co_await job.next_cycle();
      }
    }
  };
  drcr.factories().register_factory(
      "edge.Echo", [] { return std::make_unique<Echo>(); });

  // System provides port "feed"; an externally registered component eats it.
  auto system = drcom::parse_system_descriptor(R"(<drt:system name="core">
    <drt:component name="src" type="periodic" cpuusage="0.1">
      <implementation bincode="edge.Echo"/>
      <periodictask frequence="100" runoncpu="0" priority="3"/>
      <outport name="feed" interface="RTAI.SHM" type="Integer" size="1"/>
    </drt:component>
  </drt:system>)");
  ASSERT_TRUE(system.ok()) << system.error().to_string();
  ASSERT_TRUE(drcr.deploy_system(system.value()).ok());

  drcom::ComponentDescriptor sink;
  sink.name = "sink";
  sink.bincode = "edge.Echo";
  sink.type = rtos::TaskType::kPeriodic;
  sink.cpu_usage = 0.1;
  sink.periodic = drcom::PeriodicSpec{100.0, 0, 5};
  sink.ports.push_back({drcom::PortDirection::kIn, "feed",
                        drcom::PortInterface::kShm, rtos::DataType::kInteger,
                        1});
  ASSERT_TRUE(drcr.register_component(std::move(sink)).ok());
  ASSERT_EQ(drcr.active_count(), 2u);

  // Undeploying the system strands the external sink — and says why.
  ASSERT_TRUE(drcr.undeploy_system("core").ok());
  EXPECT_EQ(drcr.state_of("sink").value(),
            drcom::ComponentState::kUnsatisfied);
  EXPECT_FALSE(drcr.state_of("src").has_value());
}

TEST(DrcrEdge, EnableUnknownAndDisableUnknownFail) {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel(engine, quiet_config());
  drcom::Drcr drcr(framework, kernel);
  EXPECT_FALSE(drcr.enable_component("ghost").ok());
  EXPECT_FALSE(drcr.disable_component("ghost").ok());
  EXPECT_FALSE(drcr.unregister_component("ghost").ok());
  EXPECT_FALSE(drcr.state_of("ghost").has_value());
  EXPECT_EQ(drcr.instance_of("ghost"), nullptr);
  EXPECT_FALSE(drcr.component_health("ghost").has_value());
  EXPECT_TRUE(drcr.system_members("ghost").empty());
}

TEST(KernelEdge, StartTaskTwiceFails) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "t", .type = rtos::TaskType::kAperiodic},
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.sleep_for(seconds(1));
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  EXPECT_FALSE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_FALSE(kernel.suspend_task(999).ok());
  EXPECT_FALSE(kernel.delete_task(999).ok());
  EXPECT_FALSE(kernel.request_stop(999).ok());
}

TEST(KernelEdge, DeleteFinishedTaskIsIdempotentish) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "t", .type = rtos::TaskType::kAperiodic},
      [](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.consume(1'000);
      });
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(kernel.find_task(id.value())->state,
            rtos::TaskState::kFinished);
  // Deleting an already-finished task is allowed (frees nothing twice).
  EXPECT_TRUE(kernel.delete_task(id.value()).ok());
  EXPECT_TRUE(kernel.delete_task(id.value()).ok());
}

TEST(KernelEdge, SporadicTaskTypeBehavesLikeAperiodicInKernel) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  SimTime ran_at = -1;
  auto id = kernel.create_task(
      rtos::TaskParams{.name = "sp", .type = rtos::TaskType::kSporadic},
      [&](rtos::TaskContext& ctx) -> rtos::TaskCoro {
        co_await ctx.consume(1'000);
        ran_at = ctx.now();
      });
  ASSERT_TRUE(id.ok());  // no period required
  ASSERT_TRUE(kernel.start_task(id.value()).ok());
  engine.run_until(milliseconds(1));
  EXPECT_EQ(ran_at, 1'000);
}

TEST(HybridEdge, DrainResponsesOnInactiveComponentIsEmpty) {
  rtos::SimEngine engine;
  rtos::RtKernel kernel(engine, quiet_config());
  drcom::ComponentDescriptor d;
  d.name = "idle";
  d.bincode = "x";
  d.type = rtos::TaskType::kAperiodic;
  drcom::HybridComponent hybrid(std::move(d), kernel, nullptr);
  EXPECT_TRUE(hybrid.drain_responses().empty());
  EXPECT_FALSE(hybrid.send_command("STATUS").ok());
  EXPECT_FALSE(hybrid.activate().ok());  // no implementation
  const auto status = hybrid.status();
  EXPECT_EQ(status.component, "idle");
  EXPECT_FALSE(status.failed);
}

}  // namespace
}  // namespace drt
