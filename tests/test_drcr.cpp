// DRCR runtime tests: registration, functional resolution with dependency
// ordering, admission, the §4.3 departure cascade, bundle-driven deployment,
// custom resolving services, enable/disable, management-service publication.
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

/// Minimal periodic implementation: counts jobs.
class Ticker : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      if (auto* shm = job.out_shm("out0")) shm->write_i32(0, ++count_, job.now());
      if (auto* shm = job.out_shm("out1")) shm->write_i32(0, ++count_, job.now());
      co_await job.next_cycle();
    }
  }

 private:
  std::int32_t count_ = 0;
};

/// Consumer: reads its single in-port if present.
class Reader : public RtComponent {
 public:
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(microseconds(10));
      co_await job.next_cycle();
    }
  }
};

ComponentDescriptor component(std::string name, double usage = 0.1,
                              std::vector<std::string> outs = {},
                              std::vector<std::string> ins = {},
                              CpuId cpu = 0) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "test.Ticker";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = PeriodicSpec{1000.0, cpu, 5};
  std::size_t index = 0;
  for (auto& out : outs) {
    d.ports.push_back({PortDirection::kOut, std::move(out),
                       PortInterface::kShm, rtos::DataType::kInteger, 4});
    (void)index;
  }
  for (auto& in : ins) {
    d.ports.push_back({PortDirection::kIn, std::move(in), PortInterface::kShm,
                       rtos::DataType::kInteger, 4});
  }
  return d;
}

struct DrcrFixture : public ::testing::Test {
  DrcrFixture()
      : kernel(engine, quiet_config()), drcr(framework, kernel) {
    drcr.factories().register_factory(
        "test.Ticker", [] { return std::make_unique<Ticker>(); });
    drcr.factories().register_factory(
        "test.Reader", [] { return std::make_unique<Reader>(); });
  }

  std::vector<DrcrEventType> event_types() const {
    std::vector<DrcrEventType> out;
    for (const auto& event : drcr.recent_events()) out.push_back(event.type);
    return out;
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
};

TEST_F(DrcrFixture, IndependentComponentActivatesImmediately) {
  ASSERT_TRUE(drcr.register_component(component("solo")).ok());
  EXPECT_EQ(drcr.state_of("solo").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.active_count(), 1u);
  engine.run_until(milliseconds(10));
  const auto* instance = drcr.instance_of("solo");
  ASSERT_NE(instance, nullptr);
  EXPECT_GT(instance->status().stats.activations, 5u);
}

TEST_F(DrcrFixture, DuplicateNameRejected) {
  ASSERT_TRUE(drcr.register_component(component("dup")).ok());
  auto second = drcr.register_component(component("dup"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, "drcom.duplicate_component");
}

TEST_F(DrcrFixture, InvalidDescriptorRejected) {
  ComponentDescriptor bad = component("x");
  bad.bincode.clear();
  EXPECT_FALSE(drcr.register_component(std::move(bad)).ok());
}

TEST_F(DrcrFixture, MissingFactoryLeavesUnsatisfied) {
  ComponentDescriptor d = component("orphan");
  d.bincode = "no.such.Class";
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  EXPECT_EQ(drcr.state_of("orphan").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("orphan")->reason.find("no implementation"),
            std::string::npos);
  // Late factory registration + resolve fixes it (late binding).
  drcr.factories().register_factory("no.such.Class",
                                    [] { return std::make_unique<Ticker>(); });
  drcr.resolve();
  EXPECT_EQ(drcr.state_of("orphan").value(), ComponentState::kActive);
}

TEST_F(DrcrFixture, ThrowingFactorySurfacesAsStructuredFailure) {
  // User code runs inside the factory; a throw must become a rejection
  // reason, not unwind through the resolver.
  drcr.factories().register_factory("test.Bomb", []() -> std::unique_ptr<
                                                  RtComponent> {
    throw std::runtime_error("ctor exploded");
  });
  ComponentDescriptor d = component("bomb");
  d.bincode = "test.Bomb";
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  EXPECT_EQ(drcr.state_of("bomb").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("bomb")->reason.find("ctor exploded"),
            std::string::npos);

  auto instance = drcr.factories().create("test.Bomb");
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.error().code, "drcom.factory_failed");
}

TEST_F(DrcrFixture, NullReturningFactorySurfacesAsStructuredFailure) {
  drcr.factories().register_factory(
      "test.Null", []() -> std::unique_ptr<RtComponent> { return nullptr; });
  auto instance = drcr.factories().create("test.Null");
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.error().code, "drcom.factory_failed");
}

TEST_F(DrcrFixture, DependentWaitsForProviderThenActivates) {
  // Register the dependent FIRST: stays unsatisfied.
  ASSERT_TRUE(
      drcr.register_component(component("disp", 0.1, {}, {"data"})).ok());
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("disp")->reason.find("inport 'data'"),
            std::string::npos);
  // Provider arrives: both become active in one resolution (rounds).
  ASSERT_TRUE(
      drcr.register_component(component("calc", 0.1, {"data"})).ok());
  EXPECT_EQ(drcr.state_of("calc").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kActive);
}

TEST_F(DrcrFixture, PortCompatibilityRequiresMatchingShape) {
  ASSERT_TRUE(
      drcr.register_component(component("calc", 0.1, {"data"})).ok());
  ComponentDescriptor d = component("disp", 0.1, {}, {});
  // Same name but different size: incompatible (§2.3).
  d.ports.push_back({PortDirection::kIn, "data", PortInterface::kShm,
                     rtos::DataType::kInteger, 8});
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kUnsatisfied);
}

TEST_F(DrcrFixture, DependencyChainActivatesInRounds) {
  // c depends on b depends on a; registered in worst-case order.
  ASSERT_TRUE(drcr.register_component(component("c", 0.1, {}, {"bc"})).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.1, {"bc"}, {"ab"})).ok());
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(drcr.state_of("c").value(), ComponentState::kUnsatisfied);
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"})).ok());
  EXPECT_EQ(drcr.state_of("a").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("c").value(), ComponentState::kActive);
}

TEST_F(DrcrFixture, DepartureCascadesThroughChain) {
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"})).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.1, {"bc"}, {"ab"})).ok());
  ASSERT_TRUE(drcr.register_component(component("c", 0.1, {}, {"bc"})).ok());
  ASSERT_EQ(drcr.active_count(), 3u);
  // The §4.3 scenario: stopping the provider deactivates the dependents.
  ASSERT_TRUE(drcr.unregister_component("a").ok());
  EXPECT_FALSE(drcr.state_of("a").has_value());
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(drcr.state_of("c").value(), ComponentState::kUnsatisfied);
  EXPECT_EQ(drcr.active_count(), 0u);
  // Provider returns: the whole chain re-activates.
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"ab"})).ok());
  EXPECT_EQ(drcr.active_count(), 3u);
}

TEST_F(DrcrFixture, AdmissionRejectionLeavesUnsatisfied) {
  ASSERT_TRUE(drcr.register_component(component("big", 0.7)).ok());
  ASSERT_TRUE(drcr.register_component(component("more", 0.3)).ok());
  // 0.7 + 0.3 > 0.9 default budget.
  EXPECT_EQ(drcr.state_of("big").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("more").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("more")->reason.find("budget exceeded"),
            std::string::npos);
  // Capacity frees up: the pending component is admitted on the next pass.
  ASSERT_TRUE(drcr.unregister_component("big").ok());
  EXPECT_EQ(drcr.state_of("more").value(), ComponentState::kActive);
}

TEST_F(DrcrFixture, AdmissionIsPerCpu) {
  ASSERT_TRUE(drcr.register_component(component("one", 0.7, {}, {}, 0)).ok());
  ASSERT_TRUE(drcr.register_component(component("two", 0.7, {}, {}, 1)).ok());
  EXPECT_EQ(drcr.active_count(), 2u);
}

TEST_F(DrcrFixture, DisabledComponentWaitsForEnable) {
  ComponentDescriptor d = component("manual");
  d.enabled = false;
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  EXPECT_EQ(drcr.state_of("manual").value(), ComponentState::kDisabled);
  ASSERT_TRUE(drcr.enable_component("manual").ok());
  EXPECT_EQ(drcr.state_of("manual").value(), ComponentState::kActive);
  ASSERT_TRUE(drcr.disable_component("manual").ok());
  EXPECT_EQ(drcr.state_of("manual").value(), ComponentState::kDisabled);
  EXPECT_EQ(drcr.active_count(), 0u);
}

TEST_F(DrcrFixture, DisableCascadesToDependents) {
  ASSERT_TRUE(drcr.register_component(component("src", 0.1, {"pipe"})).ok());
  ASSERT_TRUE(
      drcr.register_component(component("sink", 0.1, {}, {"pipe"})).ok());
  ASSERT_EQ(drcr.active_count(), 2u);
  ASSERT_TRUE(drcr.disable_component("src").ok());
  EXPECT_EQ(drcr.state_of("sink").value(), ComponentState::kUnsatisfied);
  ASSERT_TRUE(drcr.enable_component("src").ok());
  EXPECT_EQ(drcr.active_count(), 2u);
}

TEST_F(DrcrFixture, ManagementServicePublishedPerActiveComponent) {
  ASSERT_TRUE(drcr.register_component(component("tuner")).ok());
  auto filter = osgi::Filter::parse("(component.name=tuner)").value();
  const auto reference =
      framework.registry().get_reference(kManagementInterface, &filter);
  ASSERT_TRUE(reference.has_value());
  auto management =
      framework.registry().get_service<RtComponentManagement>(*reference);
  ASSERT_NE(management, nullptr);
  EXPECT_EQ(management->component_name(), "tuner");
  // Service disappears on deactivation.
  ASSERT_TRUE(drcr.disable_component("tuner").ok());
  EXPECT_FALSE(framework.registry()
                   .get_reference(kManagementInterface, &filter)
                   .has_value());
}

TEST_F(DrcrFixture, EventsTellTheStory) {
  ASSERT_TRUE(drcr.register_component(component("a", 0.1, {"x"})).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.1, {}, {"x"})).ok());
  ASSERT_TRUE(drcr.unregister_component("a").ok());
  const auto types = event_types();
  // REGISTERED a, ACTIVATED a, REGISTERED b, ACTIVATED b,
  // DEACTIVATED a, UNREGISTERED a, DEACTIVATED b (cascade).
  ASSERT_GE(types.size(), 7u);
  EXPECT_EQ(types[0], DrcrEventType::kRegistered);
  EXPECT_EQ(types[1], DrcrEventType::kActivated);
  const auto deactivations = std::count(types.begin(), types.end(),
                                        DrcrEventType::kDeactivated);
  EXPECT_EQ(deactivations, 2);
}

TEST_F(DrcrFixture, ListenerReceivesEvents) {
  std::vector<std::string> seen;
  drcr.add_listener([&](const DrcrEvent& event) {
    seen.push_back(std::string(to_string(event.type)) + ":" + event.component);
  });
  ASSERT_TRUE(drcr.register_component(component("seen")).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "REGISTERED:seen");
  EXPECT_EQ(seen[1], "ACTIVATED:seen");
}

TEST_F(DrcrFixture, CustomResolverIsConsulted) {
  // A custom resolving service that vetoes any component named "banned".
  class Veto : public ResolvingService {
   public:
    const std::string& name() const override { return name_; }
    Result<void> admit(const ComponentDescriptor& candidate,
                       const SystemView&) override {
      if (candidate.name == "banned") {
        return make_error("custom.veto", "name is banned");
      }
      return Result<void>::success();
    }

   private:
    std::string name_ = "veto-service";
  };
  auto registration = framework.system_context().register_service(
      std::string(kResolvingServiceInterface),
      std::static_pointer_cast<void>(std::make_shared<Veto>()));
  ASSERT_TRUE(drcr.register_component(component("banned")).ok());
  EXPECT_EQ(drcr.state_of("banned").value(), ComponentState::kUnsatisfied);
  EXPECT_NE(drcr.component_health("banned")->reason.find("veto-service"),
            std::string::npos);
  // Unplugging the custom resolver lets the component in (adaptation).
  registration.unregister();
  EXPECT_EQ(drcr.state_of("banned").value(), ComponentState::kActive);
}

TEST_F(DrcrFixture, InternalResolverReplaceable) {
  drcr.set_internal_resolver(std::make_unique<RateMonotonicResolver>());
  ASSERT_TRUE(drcr.register_component(component("a", 0.5)).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.4)).ok());
  // 0.9 > RM bound for n=2 (0.828): b rejected.
  EXPECT_EQ(drcr.state_of("a").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kUnsatisfied);
}

TEST_F(DrcrFixture, RevocationShedsWhenBudgetShrinks) {
  ASSERT_TRUE(drcr.register_component(component("a", 0.5)).ok());
  ASSERT_TRUE(drcr.register_component(component("b", 0.3)).ok());
  ASSERT_EQ(drcr.active_count(), 2u);
  auto* budget =
      dynamic_cast<UtilizationBudgetResolver*>(&drcr.internal_resolver());
  ASSERT_NE(budget, nullptr);
  budget->set_budget(0.6);
  drcr.resolve();
  // b (newest) revoked; a stays.
  EXPECT_EQ(drcr.state_of("a").value(), ComponentState::kActive);
  EXPECT_EQ(drcr.state_of("b").value(), ComponentState::kUnsatisfied);
}

TEST_F(DrcrFixture, DrcrServiceDiscoverableInRegistry) {
  const auto reference =
      framework.registry().get_reference(kDrcrServiceInterface);
  ASSERT_TRUE(reference.has_value());
  auto handle = framework.registry().get_service<DrcrHandle>(*reference);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->drcr, &drcr);
}

TEST_F(DrcrFixture, FactoryServiceFallback) {
  // Factory contributed as an OSGi service with a drcom.bincode property.
  auto factory = std::make_shared<ComponentFactoryService>();
  factory->create = [] { return std::make_unique<Ticker>(); };
  osgi::Properties props;
  props.set("drcom.bincode", std::string("svc.Ticker"));
  framework.system_context().register_service(
      std::string(kFactoryServiceInterface),
      std::static_pointer_cast<void>(factory), props);
  ComponentDescriptor d = component("svc");
  d.bincode = "svc.Ticker";
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  EXPECT_EQ(drcr.state_of("svc").value(), ComponentState::kActive);
}

// ------------------------------- bundle-driven deployment -----------------

osgi::BundleDefinition component_bundle(const std::string& symbolic_name,
                                        const ComponentDescriptor& descriptor) {
  osgi::BundleDefinition definition;
  definition.manifest.set_symbolic_name(symbolic_name);
  definition.manifest.add_component_resource("DRT-INF/component.xml");
  definition.resources["DRT-INF/component.xml"] =
      write_descriptor(descriptor);
  return definition;
}

TEST_F(DrcrFixture, BundleStartRegistersDescribedComponents) {
  auto id = framework.install(component_bundle("rt.calc", component("calc")));
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(drcr.state_of("calc").has_value());  // not scanned yet
  ASSERT_TRUE(framework.start(id.value()).ok());
  EXPECT_EQ(drcr.state_of("calc").value(), ComponentState::kActive);
  // Bundle stop removes the component (continuous deployment).
  ASSERT_TRUE(framework.stop(id.value()).ok());
  EXPECT_FALSE(drcr.state_of("calc").has_value());
  EXPECT_EQ(drcr.active_count(), 0u);
}

TEST_F(DrcrFixture, BundleStopCascadesToDependentsInOtherBundles) {
  auto calc_id = framework.install(
      component_bundle("rt.calc", component("calc", 0.1, {"data"})));
  auto disp_id = framework.install(
      component_bundle("rt.disp", component("disp", 0.1, {}, {"data"})));
  ASSERT_TRUE(framework.start(calc_id.value()).ok());
  ASSERT_TRUE(framework.start(disp_id.value()).ok());
  ASSERT_EQ(drcr.active_count(), 2u);
  ASSERT_TRUE(framework.stop(calc_id.value()).ok());
  EXPECT_EQ(drcr.state_of("disp").value(), ComponentState::kUnsatisfied);
  // Restart brings both back without restarting anything else.
  ASSERT_TRUE(framework.start(calc_id.value()).ok());
  EXPECT_EQ(drcr.active_count(), 2u);
}

TEST_F(DrcrFixture, PreActiveBundlesScannedAtAttach) {
  // A second DRCR attaching later still sees running bundles' components.
  auto id = framework.install(component_bundle("rt.pre", component("pre")));
  ASSERT_TRUE(framework.start(id.value()).ok());
  EXPECT_EQ(drcr.state_of("pre").value(), ComponentState::kActive);
}

TEST_F(DrcrFixture, MalformedBundleDescriptorIsSkipped) {
  osgi::BundleDefinition definition;
  definition.manifest.set_symbolic_name("rt.bad");
  definition.manifest.add_component_resource("DRT-INF/broken.xml");
  definition.resources["DRT-INF/broken.xml"] = "<not-a-component/>";
  auto id = framework.install(std::move(definition));
  EXPECT_TRUE(framework.start(id.value()).ok());  // bundle itself is fine
  EXPECT_TRUE(drcr.component_names().empty());
}

}  // namespace
}  // namespace drt::drcom
