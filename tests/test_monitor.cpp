// ContractMonitor: stochastic runtime checking of declared contracts and the
// machinery it feeds — quantile estimation, typed violation events, the
// adaptation escalation ladder, empirical admission, and the determinism
// contract (monitoring off or silent must not perturb the virtual-time run).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "drcom/adaptation.hpp"
#include "drcom/drcr.hpp"
#include "drcom/monitor.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

// ------------------------------------------------- quantile estimator units
// Closed-form checks of the fixed-bucket estimator against hand-computed
// values: rank = q * total (1-based), linear interpolation in the containing
// bucket, +Inf samples attributed to the last finite bound.

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  obs::MetricsRegistry registry;
  registry.enable();
  auto* hist = registry.histogram("q.empty", "", {10.0, 20.0});
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 0.0);
}

TEST(HistogramQuantile, UniformSamplesMatchClosedForm) {
  obs::MetricsRegistry registry;
  registry.enable();
  auto* hist = registry.histogram("q.uniform", "", {25.0, 50.0, 75.0, 100.0});
  // 100 samples at 0.5, 1.5, ..., 99.5: exactly 25 per bucket, so the
  // estimator's piecewise-linear CDF is exact at every bucket edge.
  for (int i = 0; i < 100; ++i) hist->observe(static_cast<double>(i) + 0.5);
  ASSERT_EQ(hist->count(), 100u);
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(hist->quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 100.0);
}

TEST(HistogramQuantile, PointMassesInterpolateWithinBucket) {
  obs::MetricsRegistry registry;
  registry.enable();
  auto* hist = registry.histogram("q.mass", "", {10.0, 20.0, 30.0});
  for (int i = 0; i < 16; ++i) hist->observe(15.0);
  for (int i = 0; i < 4; ++i) hist->observe(25.0);
  // rank(0.95) = 19; 16 samples below the (20,30] bucket, 3/4 into it:
  // 20 + 10 * 0.75 = 27.5.
  EXPECT_DOUBLE_EQ(hist->quantile(0.95), 27.5);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastFiniteBound) {
  obs::MetricsRegistry registry;
  registry.enable();
  auto* hist = registry.histogram("q.inf", "", {100.0});
  hist->observe(150.0);
  hist->observe(2000.0);
  // Conservative, not unbounded: +Inf samples report the last finite bound.
  EXPECT_DOUBLE_EQ(hist->quantile(0.99), 100.0);
}

TEST(HistogramQuantile, BoundlessHistogramFallsBackToMean) {
  obs::MetricsRegistry registry;
  registry.enable();
  auto* hist = registry.histogram("q.none", "", {});
  hist->observe(5.0);
  hist->observe(15.0);
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 10.0);
}

// --------------------------------------------------------- monitor fixture

/// Periodic worker whose job cost is externally adjustable, so one binary
/// can play both a compliant and an overrunning component.
class Variable : public RtComponent {
 public:
  explicit Variable(SimDuration* cost) : cost_(cost) {}
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(*cost_);
      co_await job.next_cycle();
    }
  }

 private:
  SimDuration* cost_;
};

struct MonitorFixture : public ::testing::Test {
  MonitorFixture() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    kernel.metrics().enable();
    drcr.factories().register_factory("var.Impl", [this] {
      return std::make_unique<Variable>(&job_cost);
    });
  }

  /// 100 Hz worker declaring cpuusage 0.05: per-job budget C = 500us.
  ComponentDescriptor worker(const std::string& name, double usage = 0.05) {
    ComponentDescriptor d;
    d.name = name;
    d.bincode = "var.Impl";
    d.type = rtos::TaskType::kPeriodic;
    d.cpu_usage = usage;
    d.periodic = PeriodicSpec{100.0, 0, 3};
    return d;
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  SimDuration job_cost = microseconds(400);
};

TEST_F(MonitorFixture, CompliantComponentNeverTrips) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  ContractMonitor monitor(drcr);
  monitor.start();
  engine.run_until(seconds(1));
  // 400us observed vs 500us declared: inside tolerance, plenty of samples.
  EXPECT_GT(monitor.sample_count("w"), 16u);
  EXPECT_EQ(monitor.violations_reported(), 0u);
  EXPECT_EQ(drcr.total_contract_violations(), 0u);
  const auto health = drcr.component_health("w");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->contract_violations, 0u);
  EXPECT_GT(health->observed_usage, 0.0);
  EXPECT_LT(health->observed_usage, 0.05 * monitor.config().tolerance);
}

TEST_F(MonitorFixture, OverrunReportsTypedViolation) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  ContractMonitor monitor(drcr);
  monitor.start();
  job_cost = microseconds(1'200);  // 2.4x the declared 500us budget
  engine.run_until(seconds(1));
  EXPECT_GE(monitor.violations_reported(), 1u);
  EXPECT_EQ(drcr.total_contract_violations(), monitor.violations_reported());
  const auto health = drcr.component_health("w");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->contract_violations, monitor.violations_reported());
  EXPECT_GT(health->observed_usage, 0.05);
  // The violation surfaced as a typed event, not just a counter.
  std::size_t events = 0;
  for (const auto& event : drcr.recent_events()) {
    if (event.type != DrcrEventType::kContractViolation) continue;
    ++events;
    EXPECT_EQ(event.component, "w");
    EXPECT_EQ(event.code, ErrorCode::kContractViolated);
    EXPECT_NE(event.reason.find("declared"), std::string::npos);
  }
  EXPECT_EQ(events, monitor.violations_reported());
}

TEST_F(MonitorFixture, MinSamplesGatesTheFirstCheck) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  MonitorConfig config;
  config.min_samples = 1000;  // far beyond what 1s at 100 Hz produces
  ContractMonitor monitor(drcr, config);
  monitor.start();
  job_cost = microseconds(1'200);
  engine.run_until(seconds(1));
  EXPECT_EQ(monitor.violations_reported(), 0u);
  EXPECT_DOUBLE_EQ(monitor.observed_quantile_ns("w"), -1.0);
  EXPECT_DOUBLE_EQ(monitor.observed_usage("w"), -1.0);
}

TEST_F(MonitorFixture, DescriptorOptOutIsNeverWatched) {
  ComponentDescriptor d = worker("quiet");
  d.monitor = false;
  ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  ContractMonitor monitor(drcr);
  monitor.start();
  job_cost = microseconds(1'200);
  engine.run_until(seconds(1));
  EXPECT_EQ(monitor.sample_count("quiet"), 0u);
  EXPECT_EQ(monitor.violations_reported(), 0u);
}

TEST_F(MonitorFixture, EscalationLadderQuarantinesRepeatOffender) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  ContractMonitor monitor(drcr);
  AdaptationConfig ladder;
  ladder.poll_period = milliseconds(50);
  ladder.policies = {
      {AdaptationTrigger::kContractViolation, QosActionKind::kNotify, 1},
      {AdaptationTrigger::kContractViolation, QosActionKind::kDisable, 2},
  };
  AdaptationManager manager(drcr, ladder);
  monitor.start();
  manager.start();
  job_cost = microseconds(1'200);
  engine.run_until(seconds(1));
  EXPECT_GE(manager.trips_of("w", AdaptationTrigger::kContractViolation), 2u);
  EXPECT_EQ(drcr.state_of("w").value(), ComponentState::kDisabled);
  auto health = drcr.component_health("w");
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(health->quarantined);
  // Quarantine is an operator-reversible decision, not a tombstone.
  ASSERT_TRUE(drcr.enable_component("w").ok());
  health = drcr.component_health("w");
  EXPECT_FALSE(health->quarantined);
  EXPECT_EQ(health->state, ComponentState::kActive);
}

TEST_F(MonitorFixture, ComponentHealthSnapshotsTheRecord) {
  ASSERT_TRUE(drcr.register_component(worker("w")).ok());
  const auto health = drcr.component_health("w");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->name, "w");
  EXPECT_EQ(health->state, ComponentState::kActive);
  EXPECT_EQ(health->last_error, ErrorCode::kNone);
  EXPECT_DOUBLE_EQ(health->declared_usage, 0.05);
  EXPECT_DOUBLE_EQ(health->observed_usage, -1.0);  // no monitor attached
  EXPECT_FALSE(health->quarantined);
  EXPECT_TRUE(health->current_mode.empty());
  EXPECT_FALSE(drcr.component_health("ghost").has_value());
}

TEST_F(MonitorFixture, LegacySingleActionMapsToOneStepLadder) {
  AdaptationManager manager(drcr);  // default config: no policies declared
  const auto policies = manager.effective_policies();
  ASSERT_EQ(policies.size(), 1u);
  EXPECT_EQ(policies[0].trigger, AdaptationTrigger::kQosRule);
  EXPECT_EQ(policies[0].action, QosActionKind::kNotify);
  EXPECT_EQ(policies[0].threshold, 1u);
}

// ---------------------------------------------------- empirical admission

TEST(EmpiricalAdmission, ObservedUsageTightensTheBudget) {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel(engine, quiet_config());
  kernel.metrics().enable();
  DrcrConfig config;
  config.empirical_admission = true;
  Drcr drcr(framework, kernel, config);
  SimDuration cost = microseconds(6'000);
  drcr.factories().register_factory(
      "var.Impl", [&] { return std::make_unique<Variable>(&cost); });

  ComponentDescriptor liar;
  liar.name = "liar";
  liar.bincode = "var.Impl";
  liar.type = rtos::TaskType::kPeriodic;
  liar.cpu_usage = 0.2;  // declares 2ms per 10ms period, burns 6ms
  liar.periodic = PeriodicSpec{100.0, 0, 3};
  ASSERT_TRUE(drcr.register_component(std::move(liar)).ok());

  ContractMonitor monitor(drcr);
  monitor.start();
  engine.run_until(milliseconds(400));
  ASSERT_GE(monitor.sample_count("liar"), 16u);
  ASSERT_GT(monitor.observed_usage("liar"), 0.5);

  // Declared math admits the candidate (0.2 + 0.5 <= 0.9); observed does
  // not (~0.59 + 0.5 > 0.9). Empirical admission must say no.
  ComponentDescriptor candidate;
  candidate.name = "cand";
  candidate.bincode = "var.Impl";
  candidate.type = rtos::TaskType::kPeriodic;
  candidate.cpu_usage = 0.5;
  candidate.periodic = PeriodicSpec{100.0, 0, 4};
  ASSERT_TRUE(drcr.register_component(std::move(candidate)).ok());
  EXPECT_EQ(drcr.state_of("cand").value(), ComponentState::kUnsatisfied);
  const auto health = drcr.component_health("cand");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->last_error, ErrorCode::kAdmissionRejected);
  EXPECT_NE(health->reason.find("observed"), std::string::npos);
}

// -------------------------------------------------- determinism contract

/// One self-contained stack for the differential run.
struct World {
  World() : kernel(engine, quiet_config()), drcr(framework, kernel) {
    kernel.metrics().enable();
    kernel.trace().enable();
    drcr.factories().register_factory("var.Impl", [this] {
      return std::make_unique<Variable>(&job_cost);
    });
    ComponentDescriptor d;
    d.name = "w";
    d.bincode = "var.Impl";
    d.type = rtos::TaskType::kPeriodic;
    d.cpu_usage = 0.05;
    d.periodic = PeriodicSpec{100.0, 0, 3};
    EXPECT_TRUE(drcr.register_component(std::move(d)).ok());
  }

  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel;
  Drcr drcr;
  SimDuration job_cost = microseconds(400);  // compliant: no violations
};

/// Drops the monitor-only series (per-task exec histograms and the
/// violation counter) from a rendered export, leaving what both worlds
/// must agree on byte for byte.
std::string without_monitor_series(const std::string& rendered) {
  std::string out;
  std::size_t start = 0;
  while (start <= rendered.size()) {
    const std::size_t end = rendered.find('\n', start);
    const std::string line = rendered.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    if (line.find("task_exec_ns") == std::string::npos &&
        line.find("contract_violations") == std::string::npos) {
      out += line;
      if (end != std::string::npos) out += '\n';
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

TEST(MonitorDifferential, SilentMonitorIsInvisibleInEveryExport) {
  World on;
  World off;
  ContractMonitor monitor(on.drcr);  // only world "on" is watched
  monitor.start();
  on.engine.run_until(seconds(1));
  off.engine.run_until(seconds(1));
  ASSERT_EQ(monitor.violations_reported(), 0u);
  ASSERT_GT(monitor.sample_count("w"), 16u);

  const auto snap_on = on.drcr.observe();
  const auto snap_off = off.drcr.observe();
  ASSERT_EQ(snap_on.now, snap_off.now);

  // Scheduling is untouched: the kernel trace renders byte-identically.
  obs::ChromeTraceExporter chrome;
  EXPECT_EQ(chrome.render(snap_on), chrome.render(snap_off));

  // Lifecycle history is untouched: same events, no violation entries.
  const auto events_on = on.drcr.recent_events();
  const auto events_off = off.drcr.recent_events();
  ASSERT_EQ(events_on.size(), events_off.size());
  for (std::size_t i = 0; i < events_on.size(); ++i) {
    EXPECT_EQ(events_on[i].type, events_off[i].type);
    EXPECT_EQ(events_on[i].component, events_off[i].component);
    EXPECT_EQ(events_on[i].when, events_off[i].when);
  }

  // Metrics differ ONLY by the monitor's own series: filtering those out
  // of the monitored world's export reproduces the bare world's export.
  obs::PrometheusExporter prom;
  const std::string prom_on = prom.render(snap_on);
  const std::string prom_off = prom.render(snap_off);
  EXPECT_NE(prom_on, prom_off);  // the extra series do exist...
  EXPECT_EQ(without_monitor_series(prom_on), prom_off);  // ...and only they
  EXPECT_EQ(prom_off.find("task_exec_ns"), std::string::npos);
  EXPECT_EQ(prom_off.find("contract_violations"), std::string::npos);
}

}  // namespace
}  // namespace drt::drcom
