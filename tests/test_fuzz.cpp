// The scenario fuzzer is itself a contract: same seed → bit-identical run,
// clean seeds stay clean, the planted accounting bug is caught / shrunk /
// replayable, and repro files round-trip through their parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "testing/fuzzer.hpp"
#include "util/logging.hpp"

namespace drt::testing {
namespace {

ScenarioConfig short_config() {
  ScenarioConfig config;
  config.action_count = 20;
  return config;
}

class FuzzTest : public ::testing::Test {
 protected:
  // Component churn logs one line per activation; silence it like drt_fuzz.
  void SetUp() override { log::set_level(log::Level::kError); }
  void TearDown() override { log::set_level(log::Level::kInfo); }
};

TEST_F(FuzzTest, SameSeedIsBitIdentical) {
  const ScenarioConfig config = short_config();
  const ScenarioResult first = run_scenario(7, config);
  const ScenarioResult second = run_scenario(7, config);
  ASSERT_FALSE(first.action_log.empty());
  ASSERT_FALSE(first.trace_text.empty());
  EXPECT_EQ(first.action_log, second.action_log);
  EXPECT_EQ(first.trace_text, second.trace_text);
}

TEST_F(FuzzTest, ShortSweepFindsNoViolations) {
  const ScenarioConfig config = short_config();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const ScenarioResult result = run_scenario(seed, config);
    EXPECT_FALSE(result.violated)
        << "seed " << seed << ": " << result.violation.invariant << ": "
        << result.violation.detail;
  }
}

TEST_F(FuzzTest, PlantedBugIsCaughtShrunkAndReplayable) {
  ScenarioConfig config = short_config();
  config.plant_bug = true;
  const std::uint64_t seed = 1;

  const ScenarioResult result = run_scenario(seed, config);
  ASSERT_TRUE(result.violated);
  EXPECT_EQ(result.violation.invariant, "mailbox-conservation");

  const auto keep = shrink(seed, config, result.failing_index);
  ASSERT_FALSE(keep.empty());
  EXPECT_LE(keep.size(), result.failing_index + 1);
  const ScenarioResult shrunk = run_scenario_subset(seed, config, keep);
  ASSERT_TRUE(shrunk.violated);
  EXPECT_EQ(shrunk.violation.invariant, "mailbox-conservation");

  // write → parse → replay must reproduce the violation from the file alone.
  const std::string text = write_repro(Repro{seed, config, keep}, shrunk);
  auto parsed = parse_repro(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().seed, seed);
  EXPECT_EQ(parsed.value().keep, keep);
  EXPECT_TRUE(parsed.value().config.plant_bug);
  const ScenarioResult replayed = replay(parsed.value());
  ASSERT_TRUE(replayed.violated);
  EXPECT_EQ(replayed.violation.invariant, "mailbox-conservation");
  EXPECT_EQ(replayed.violation.detail, shrunk.violation.detail);
}

TEST_F(FuzzTest, SubsetRunsAreDeterministicToo) {
  const ScenarioConfig config = short_config();
  const std::vector<std::size_t> keep{0, 3, 4, 9, 15};
  const ScenarioResult first = run_scenario_subset(11, config, keep);
  const ScenarioResult second = run_scenario_subset(11, config, keep);
  EXPECT_EQ(first.action_log, second.action_log);
  EXPECT_EQ(first.trace_text, second.trace_text);
  EXPECT_EQ(first.action_log.size(), keep.size());
}

TEST_F(FuzzTest, ReproParserRejectsMalformedInput) {
  auto no_seed = parse_repro("actions 20\nkeep 0 1\n");
  ASSERT_FALSE(no_seed.ok());
  EXPECT_EQ(no_seed.error().code, "fuzz.bad_repro");

  auto bad_seed = parse_repro("seed banana\n");
  ASSERT_FALSE(bad_seed.ok());
  EXPECT_EQ(bad_seed.error().code, "fuzz.bad_repro");

  auto unknown_key = parse_repro("seed 1\nwibble 3\n");
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_EQ(unknown_key.error().code, "fuzz.bad_repro");

  auto unsorted_keep = parse_repro("seed 1\nkeep 3 1\n");
  ASSERT_FALSE(unsorted_keep.ok());
  EXPECT_EQ(unsorted_keep.error().code, "fuzz.bad_repro");

  auto zero_cpus = parse_repro("seed 1\ncpus 0\n");
  ASSERT_FALSE(zero_cpus.ok());
  EXPECT_EQ(zero_cpus.error().code, "fuzz.bad_repro");
}

TEST_F(FuzzTest, ReproWithoutKeepReplaysTheFullSequence) {
  auto parsed = parse_repro("# comment\n\nseed 5\nactions 12\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().keep.size(), 12u);
  EXPECT_EQ(parsed.value().keep.front(), 0u);
  EXPECT_EQ(parsed.value().keep.back(), 11u);
}

}  // namespace
}  // namespace drt::testing
