// Response-time-analysis resolver: the exact fixed-priority schedulability
// test, validated against hand-computed classics and against the simulator
// itself (analysis says feasible <=> simulation shows zero misses).
#include <gtest/gtest.h>

#include "drcom/drcr.hpp"
#include "test_helpers.hpp"

namespace drt::drcom {
namespace {

using rtos::testing::quiet_config;

// ------------------------------------------------- response_time() maths --

TEST(ResponseTime, NoInterferenceIsJustCost) {
  EXPECT_EQ(ResponseTimeResolver::response_time(5, 100, {}), 5);
}

TEST(ResponseTime, ClassicTextbookSet) {
  // Burns & Wellings example: C/T = 3/7(hi), 3/12, 5/20 — all feasible.
  // R1 = 3; R2 = 3 + ceil(R2/7)*3 -> 6; R3 = 5 + ceil/7*3 + ceil/12*3 -> 20.
  EXPECT_EQ(ResponseTimeResolver::response_time(3, 7, {}), 3);
  EXPECT_EQ(ResponseTimeResolver::response_time(3, 12, {{3, 7}}), 6);
  EXPECT_EQ(
      ResponseTimeResolver::response_time(5, 20, {{3, 7}, {3, 12}}), 20);
}

TEST(ResponseTime, InfeasibleReturnsFirstExceedingValue) {
  // 60% + 60% on one CPU: the low task misses. The iteration crosses the
  // deadline at R = 6 + ceil(6/10)*6 = 12, and that first exceeding value is
  // returned so rejection messages can report a concrete response time.
  EXPECT_EQ(ResponseTimeResolver::response_time(6, 10, {{6, 10}}), 12);
}

TEST(ResponseTime, DivergentRecurrenceHitsIterationCap) {
  // U > 1 with a huge deadline: the iterate grows by 1 per step and never
  // crosses D within the 1000-iteration cap, so the analysis reports
  // kSimTimeNever ("diverges") rather than a concrete value.
  EXPECT_EQ(ResponseTimeResolver::response_time(1, 1'000'000, {{1, 1}}),
            kSimTimeNever);
}

TEST(ResponseTime, ExactFitConverges) {
  // U = 1.0 harmonic: C=5,T=10 (hi) + C=5,D=T=10? low: R = 5 + ceil(R/10)*5
  // -> 10 == D: feasible at exactly full utilization (harmonic).
  EXPECT_EQ(ResponseTimeResolver::response_time(5, 10, {{5, 10}}), 10);
}

// --------------------------------------------------------- admit() logic --

ComponentDescriptor periodic_component(std::string name, double usage,
                                       double hz, int priority,
                                       SimDuration deadline = 0) {
  ComponentDescriptor d;
  d.name = std::move(name);
  d.bincode = "rta.Impl";
  d.type = rtos::TaskType::kPeriodic;
  d.cpu_usage = usage;
  d.periodic = PeriodicSpec{hz, 0, priority, deadline};
  return d;
}

SystemView view_of(const std::vector<const ComponentDescriptor*>& active) {
  SystemView view;
  view.active = active;
  view.cpu_count = 1;
  return view;
}

TEST(RtaResolver, AdmitsBeyondRmBound) {
  // Harmonic set at U = 0.95: RM bound (0.78 for n=3) rejects, RTA admits.
  ResponseTimeResolver rta(0);  // no overhead for the pure-maths check
  RateMonotonicResolver rm;
  const auto a = periodic_component("a", 0.475, 1000.0, 1);
  const auto b = periodic_component("b", 0.25, 500.0, 2);
  const auto candidate = periodic_component("c", 0.225, 250.0, 4);
  EXPECT_FALSE(rm.admit(candidate, view_of({&a, &b})).ok());
  EXPECT_TRUE(rta.admit(candidate, view_of({&a, &b})).ok())
      << rta.admit(candidate, view_of({&a, &b})).error().message;
}

TEST(RtaResolver, RejectsWhenExistingTaskWouldBreak) {
  // The candidate has HIGHER priority than an existing tight task: admitting
  // it would break the deployed contract, which §2.2 forbids.
  ResponseTimeResolver rta(0);
  const auto existing = periodic_component("old", 0.6, 1000.0, 5);
  const auto candidate = periodic_component("new", 0.45, 2000.0, 1);
  auto result = rta.admit(candidate, view_of({&existing}));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("'old'"), std::string::npos);
}

TEST(RtaResolver, RejectionReportsFirstExceedingResponse) {
  // Same set as above: 'old' iterates 600000 -> 600000 + 2*225000 = 1050000,
  // which crosses D = 1000000. The message must cite that concrete value.
  ResponseTimeResolver rta(0);
  const auto existing = periodic_component("old", 0.6, 1000.0, 5);
  const auto candidate = periodic_component("new", 0.45, 2000.0, 1);
  auto result = rta.admit(candidate, view_of({&existing}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().message,
            "RTA: task 'old' would miss its deadline on cpu 0 "
            "(R=1050000 > D=1000000) if 'new' were admitted");
}

TEST(RtaResolver, RejectionReportsDivergesOnlyAtIterationCap) {
  // A saturating interferer (U = 1.0, C = T = 1000ns) plus a candidate with a
  // deadline far beyond what 1000 iterations can reach: the recurrence never
  // crosses D before the cap, so the message says "diverges".
  ResponseTimeResolver rta(0);
  const auto hog = periodic_component("hog", 1.0, 1'000'000.0, 1);
  const auto candidate =
      periodic_component("div", 0.001, 1000.0, 7, microseconds(100'000));
  auto result = rta.admit(candidate, view_of({&hog}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().message,
            "RTA: task 'div' would miss its deadline on cpu 0 "
            "(R diverges > D=100000000) if 'div' were admitted");
}

TEST(RtaResolver, ConstrainedDeadlineTightensTheTest) {
  ResponseTimeResolver rta(0);
  const auto interferer = periodic_component("hi", 0.4, 1000.0, 1);
  // Low task: C = 0.3 * 2ms = 600us, deadline 1ms. R = 600 + ceil(R/1ms)*400.
  // R -> 600+400 = 1000 <= 1000: feasible with D=1ms...
  const auto ok_candidate =
      periodic_component("lo", 0.3, 500.0, 5, microseconds(1'000));
  EXPECT_TRUE(rta.admit(ok_candidate, view_of({&interferer})).ok());
  // ...but infeasible with D=900us.
  const auto bad_candidate =
      periodic_component("lo", 0.3, 500.0, 5, microseconds(900));
  EXPECT_FALSE(rta.admit(bad_candidate, view_of({&interferer})).ok());
}

TEST(RtaResolver, ConstrainedDeadlineRejectionReportsEffectiveDeadline) {
  // Pin the exact message for a constrained-deadline rejection: it must cite
  // the effective deadline D_i (900us), not the 2ms period the task releases
  // on — the response time is compared against D_i. R iterates 600us ->
  // 600 + ceil(600/1000)*400 = 1000us, first exceeding value.
  ResponseTimeResolver rta(0);
  const auto interferer = periodic_component("hi", 0.4, 1000.0, 1);
  const auto bad_candidate =
      periodic_component("lo", 0.3, 500.0, 5, microseconds(900));
  auto result = rta.admit(bad_candidate, view_of({&interferer}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().message,
            "RTA: task 'lo' would miss its deadline on cpu 0 "
            "(R=1000000 > D=900000) if 'lo' were admitted");
}

TEST(RtaResolver, AperiodicPassesThrough) {
  ResponseTimeResolver rta;
  ComponentDescriptor aperiodic;
  aperiodic.name = "evt";
  aperiodic.bincode = "x";
  aperiodic.type = rtos::TaskType::kAperiodic;
  EXPECT_TRUE(rta.admit(aperiodic, view_of({})).ok());
}

// --------------------------- analysis vs simulation cross-validation ------

class Spinner : public RtComponent {
 public:
  explicit Spinner(SimDuration cost) : cost_(cost) {}
  rtos::TaskCoro run(JobContext& job) override {
    while (job.active()) {
      co_await job.consume(cost_);
      co_await job.next_cycle();
    }
  }

 private:
  SimDuration cost_;
};

/// The RTA must agree with the simulator: sets it admits run without misses.
TEST(RtaResolver, AdmittedSetsAreMissFreeInSimulation) {
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel(engine, quiet_config(1));
  DrcrConfig config;
  config.cpu_budget = 1.0;
  Drcr drcr(framework, kernel, config);
  // Per-job overhead in the quiet config: poll cost 150ns, no ctx switch.
  drcr.set_internal_resolver(std::make_unique<ResponseTimeResolver>(200));

  struct Spec {
    const char* name;
    double usage;
    double hz;
    int priority;
  };
  // Harmonic near-saturation set: U = 0.95.
  const Spec specs[] = {{"a", 0.475, 1000.0, 1},
                        {"b", 0.25, 500.0, 2},
                        {"c", 0.225, 250.0, 4}};
  for (const auto& spec : specs) {
    drcr.factories().register_factory(
        std::string("rta.") + spec.name, [&spec] {
          const auto period = period_from_hz(spec.hz);
          return std::make_unique<Spinner>(static_cast<SimDuration>(
              spec.usage * static_cast<double>(period)));
        });
    ComponentDescriptor d =
        periodic_component(spec.name, spec.usage, spec.hz, spec.priority);
    d.bincode = std::string("rta.") + spec.name;
    ASSERT_TRUE(drcr.register_component(std::move(d)).ok());
  }
  ASSERT_EQ(drcr.active_count(), 3u);  // RTA admits the whole set
  engine.run_until(seconds(5));
  for (const auto& spec : specs) {
    EXPECT_EQ(drcr.instance_of(spec.name)->status().stats.deadline_misses, 0u)
        << spec.name;
  }
}

TEST(RtaResolver, RejectedAdditionWouldHaveMissedInSimulation) {
  // Counterfactual check: force the rejected set in with always-accept and
  // observe real misses — proving the RTA rejection was warranted.
  rtos::SimEngine engine;
  osgi::Framework framework;
  rtos::RtKernel kernel(engine, quiet_config(1));
  DrcrConfig config;
  config.cpu_budget = 1.0;
  Drcr drcr(framework, kernel, config);
  drcr.set_internal_resolver(std::make_unique<AlwaysAcceptResolver>());
  // 60% at prio 5 plus 45% at prio 1 (the RejectsWhenExistingTaskWouldBreak
  // set): "old" must miss.
  drcr.factories().register_factory("rta.old", [] {
    return std::make_unique<Spinner>(microseconds(600));
  });
  drcr.factories().register_factory("rta.new", [] {
    return std::make_unique<Spinner>(microseconds(225));
  });
  ComponentDescriptor old_c = periodic_component("old", 0.6, 1000.0, 5);
  old_c.bincode = "rta.old";
  ComponentDescriptor new_c = periodic_component("new", 0.45, 2000.0, 1);
  new_c.bincode = "rta.new";
  ASSERT_TRUE(drcr.register_component(std::move(old_c)).ok());
  ASSERT_TRUE(drcr.register_component(std::move(new_c)).ok());
  engine.run_until(seconds(2));
  EXPECT_GT(drcr.instance_of("old")->status().stats.deadline_misses, 0u);
  EXPECT_EQ(drcr.instance_of("new")->status().stats.deadline_misses, 0u);
}

}  // namespace
}  // namespace drt::drcom
