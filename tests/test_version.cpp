// OSGi version and version-range semantics.
#include <gtest/gtest.h>

#include "osgi/version.hpp"

namespace drt::osgi {
namespace {

TEST(Version, ParseForms) {
  EXPECT_EQ(Version::parse("1").value(), Version(1, 0, 0));
  EXPECT_EQ(Version::parse("1.2").value(), Version(1, 2, 0));
  EXPECT_EQ(Version::parse("1.2.3").value(), Version(1, 2, 3));
  EXPECT_EQ(Version::parse("1.2.3.beta").value(), Version(1, 2, 3, "beta"));
  EXPECT_EQ(Version::parse(" 2.0 ").value(), Version(2, 0, 0));
}

TEST(Version, ParseErrors) {
  EXPECT_FALSE(Version::parse("").ok());
  EXPECT_FALSE(Version::parse("a.b").ok());
  EXPECT_FALSE(Version::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(Version::parse("-1").ok());
  EXPECT_FALSE(Version::parse("1..2").ok());
}

TEST(Version, TotalOrder) {
  EXPECT_LT(Version(1, 0, 0), Version(2, 0, 0));
  EXPECT_LT(Version(1, 1, 0), Version(1, 2, 0));
  EXPECT_LT(Version(1, 1, 1), Version(1, 1, 2));
  EXPECT_LT(Version(1, 0, 0, "alpha"), Version(1, 0, 0, "beta"));
  EXPECT_LT(Version(1, 0, 0), Version(1, 0, 0, "x"));  // no qualifier first
  EXPECT_EQ(Version(1, 2, 3), Version(1, 2, 3));
}

TEST(Version, ToStringRoundTrip) {
  const Version v(1, 2, 3, "rc1");
  EXPECT_EQ(v.to_string(), "1.2.3.rc1");
  EXPECT_EQ(Version::parse(v.to_string()).value(), v);
  EXPECT_EQ(Version(1, 0, 0).to_string(), "1.0.0");
}

TEST(VersionRange, BareVersionMeansUnboundedAbove) {
  auto range = VersionRange::parse("1.5").value();
  EXPECT_FALSE(range.includes(Version(1, 4, 9)));
  EXPECT_TRUE(range.includes(Version(1, 5, 0)));
  EXPECT_TRUE(range.includes(Version(99, 0, 0)));
}

TEST(VersionRange, ClosedOpenInterval) {
  auto range = VersionRange::parse("[1.0,2.0)").value();
  EXPECT_TRUE(range.includes(Version(1, 0, 0)));
  EXPECT_TRUE(range.includes(Version(1, 9, 9)));
  EXPECT_FALSE(range.includes(Version(2, 0, 0)));
  EXPECT_FALSE(range.includes(Version(0, 9, 9)));
}

TEST(VersionRange, OpenClosedInterval) {
  auto range = VersionRange::parse("(1.0,2.0]").value();
  EXPECT_FALSE(range.includes(Version(1, 0, 0)));
  EXPECT_TRUE(range.includes(Version(1, 0, 1)));
  EXPECT_TRUE(range.includes(Version(2, 0, 0)));
}

TEST(VersionRange, DefaultMatchesEverything) {
  const VersionRange range;
  EXPECT_TRUE(range.includes(Version(0, 0, 0)));
  EXPECT_TRUE(range.includes(Version(100, 0, 0)));
}

TEST(VersionRange, ParseErrors) {
  EXPECT_FALSE(VersionRange::parse("").ok());
  EXPECT_FALSE(VersionRange::parse("[1.0").ok());
  EXPECT_FALSE(VersionRange::parse("[1.0]").ok());
  EXPECT_FALSE(VersionRange::parse("[2.0,1.0)").ok());
  EXPECT_FALSE(VersionRange::parse("[a,b]").ok());
}

TEST(VersionRange, ToString) {
  EXPECT_EQ(VersionRange::parse("[1.0,2.0)").value().to_string(),
            "[1.0.0,2.0.0)");
  EXPECT_EQ(VersionRange::parse("1.5").value().to_string(), "1.5.0");
}

}  // namespace
}  // namespace drt::osgi
